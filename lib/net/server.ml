(** Multi-threaded TCP server exposing one shared {!Youtopia.System.t}.

    Thread model: one accept thread; per connection, one {b reader} thread
    (frames in, dispatch) and one {b writer} thread draining a
    per-connection outbound queue.  Engine work runs under a
    writer-preferring {!Rwlock}: scripts made only of read-only plain SQL
    (SELECT without INTO ANSWER, EXPLAIN, SHOW …) and read-only admin
    probes share the engine, while anything that can mutate — DML, DDL,
    entangled submissions (match + joint atomic fulfilment), cancels — is
    exclusive, so the coordination path still never interleaves with other
    statements.  SQL is parsed {i outside} the lock.  Slow clients never
    hold the engine: the reader computes a response under the engine lock,
    enqueues it, and the writer thread owns the socket send.

    Push delivery: each connection's handshake creates a session for the
    connection's user and installs a {!Youtopia.Session.set_listener}
    hand-off, so the coordinator's notification — raised inside some other
    connection's fulfilment, under the engine lock — is enqueued on the
    owner's outbound queue immediately and hits the wire as a [PUSH] frame
    without any polling. *)

let log_src = Logs.Src.create "youtopia.net" ~doc:"Youtopia network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  backlog : int;
  max_frame : int;
  read_timeout : float;  (** seconds a reader waits for a frame; 0 = forever *)
  max_outq : int;
      (** frames a connection may have queued outbound before it is
          dropped as a slow consumer *)
  banner : string;
  serialize_reads : bool;
      (** run read-only scripts in the exclusive section too — the
          global-mutex baseline for the concurrency benchmark *)
  batch_writes : bool;
      (** writer requests go through the batching drainer instead of each
          taking the exclusive section alone *)
  max_batch : int;  (** most write requests the drainer executes per batch *)
  max_delay_us : int;
      (** µs the drainer holds a batch open for more writers to join *)
  max_batchq : int;
      (** bound on queued write requests; readers block (backpressure)
          when the queue is full *)
  durability : Relational.Wal.durability option;
      (** applied to the system's WAL at {!start}; [None] leaves the
          database's current mode untouched *)
  replica_of : (string * int) option;
      (** run as a read replica of this primary: writes are rejected with
          a redirect naming it, and an upstream loop bootstraps from a
          streamed snapshot then tails the primary's WAL *)
  replica_id : string;  (** name announced in the replica handshake *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7077;
    backlog = 64;
    max_frame = Wire.default_max_frame;
    read_timeout = 0.;
    max_outq = 1024;
    banner = "youtopia";
    serialize_reads = false;
    batch_writes = true;
    max_batch = 32;
    max_delay_us = 1_000;
    max_batchq = 256;
    durability = None;
    replica_of = None;
    replica_id = "replica";
  }

type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  outq : string Queue.t;
  out_mu : Mutex.t;
  out_cond : Condition.t;
  mutable closing : bool;
  mutable reader : Thread.t option;
  mutable writer : Thread.t option;
}

(** One writer request parked in the batch queue: everything the drainer
    needs to execute it and fan the response back out. *)
type write_req = {
  wr_conn : conn;
  wr_session : Youtopia.Session.t;
  wr_id : int;
  wr_stmts : Sql.Ast.statement list;  (** parsed outside the engine lock *)
  wr_t0 : float;  (** arrival time, for end-to-end submit latency *)
}

type t = {
  sys : Youtopia.System.t;
  config : config;
  stats : Server_stats.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  engine_lock : Rwlock.t;
  conns : (int, conn) Hashtbl.t;
  conns_mu : Mutex.t;
  mutable next_conn_id : int;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
  (* write-batching executor *)
  batchq : write_req Queue.t;
  batch_mu : Mutex.t;
  batch_cond : Condition.t;  (* work arrived (or shutdown) *)
  batch_space : Condition.t;  (* queue has room again *)
  mutable drainer : Thread.t option;
  (* replication *)
  hub : Replication.Hub.t option;
      (** primary side: committed batches fan out to replica sinks;
          [None] without a WAL or in replica mode *)
  mutable replica : Replication.Replica.t option;
      (** replica side: the upstream loop tailing the primary *)
}

let port t = t.bound_port
let stats t = t.stats
let system t = t.sys
let is_replica t = t.config.replica_of <> None

(** Ship batches noted under the engine lock to connected replicas; called
    after the lock is released, next to the response fan-out. *)
let hub_flush t =
  match t.hub with
  | None -> ()
  | Some hub ->
    Replication.Hub.flush hub;
    let s = Replication.Hub.stats hub in
    Server_stats.set_repl_shipping t.stats
      ~batches:s.Replication.Hub.batches_shipped
      ~records:s.Replication.Hub.records_shipped
      ~last_lsn:s.Replication.Hub.last_shipped_lsn
      ~acked_lsn:s.Replication.Hub.min_acked_lsn

(* ---------------- engine access ---------------- *)

let with_engine t f =
  let waited = ref false in
  let r =
    Rwlock.with_write ~on_wait:(fun () -> waited := true) t.engine_lock f
  in
  Server_stats.on_engine_write t.stats ~waited:!waited;
  r

let with_engine_read t f =
  if t.config.serialize_reads then with_engine t f
  else begin
    let waited = ref false in
    let r =
      Rwlock.with_read ~on_wait:(fun () -> waited := true) t.engine_lock f
    in
    Server_stats.on_engine_read t.stats ~waited:!waited;
    r
  end

(** A statement the engine can run under the shared lock — shared with the
    client's replica routing so both sides agree (see
    {!Sql.Ast.read_only}). *)
let read_only_stmt : Sql.Ast.statement -> bool = Sql.Ast.read_only

(* ---------------- outbound queue ---------------- *)

(** Enqueue for the writer thread, bounded by [config.max_outq]: a peer
    that stops reading while frames keep arriving (the writer blocked in
    [write], the queue growing) is dropped rather than buffered without
    limit.  The fd shutdown kicks both the blocked writer and the
    reader's pending read, so normal teardown runs. *)
let enqueue t conn payload =
  Mutex.lock conn.out_mu;
  let overflow =
    if conn.closing then false
    else if Queue.length conn.outq >= t.config.max_outq then begin
      conn.closing <- true;
      Queue.clear conn.outq;
      Condition.signal conn.out_cond;
      true
    end
    else begin
      Queue.push payload conn.outq;
      Condition.signal conn.out_cond;
      false
    end
  in
  Mutex.unlock conn.out_mu;
  if overflow then begin
    Server_stats.on_error t.stats;
    Log.warn (fun f ->
        f "conn %d: slow consumer, %d frames queued; dropping" conn.conn_id
          t.config.max_outq);
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

let send t conn response = enqueue t conn (Wire.encode_response response)

(** Writer thread body: drain the queue to the socket; exit once the
    connection is closing {i and} the queue is empty, so queued frames
    (final errors, goodbye-time pushes) still reach the peer. *)
let writer_loop t conn =
  let rec next () =
    Mutex.lock conn.out_mu;
    let rec wait () =
      if Queue.is_empty conn.outq && not conn.closing then begin
        Condition.wait conn.out_cond conn.out_mu;
        wait ()
      end
    in
    wait ();
    let item = if Queue.is_empty conn.outq then None else Some (Queue.pop conn.outq) in
    Mutex.unlock conn.out_mu;
    match item with
    | None -> () (* closing and drained *)
    | Some payload ->
      (match Wire.write_frame ~max_frame:t.config.max_frame conn.fd payload with
      | () ->
        Server_stats.on_frame_out t.stats ~bytes:(String.length payload + 4);
        next ()
      | exception (Wire.Closed | Wire.Protocol_error _ | Unix.Unix_error _) ->
        (* peer gone or unwritable: stop draining; the reader notices EOF *)
        Mutex.lock conn.out_mu;
        conn.closing <- true;
        Queue.clear conn.outq;
        Mutex.unlock conn.out_mu)
  in
  next ()

(* ---------------- request handling ---------------- *)

let rec body_of_outcome (o : Core.Coordinator.outcome) : Wire.result_body =
  match o with
  | Core.Coordinator.Rejected m -> Wire.Rejected m
  | Core.Coordinator.Answered n -> Wire.Answered n
  | Core.Coordinator.Registered id -> Wire.Registered id
  | Core.Coordinator.Multi os -> Wire.Multi (List.map body_of_outcome os)

let body_of_response : Youtopia.System.response -> Wire.result_body = function
  | Youtopia.System.Sql r -> Wire.Sql_result (Sql.Run.result_to_string r)
  | Youtopia.System.Coordination o -> body_of_outcome o
  | Youtopia.System.Pending_listing s -> Wire.Listing s

(** Statements that mutate table data and can therefore unblock a pending
    coordination: after running any of these the server pokes the
    coordinator (once per batch on the batching path) so parked entangled
    queries see the new rows and pushes go out. *)
let dml_stmt : Sql.Ast.statement -> bool = function
  | Sql.Ast.Insert _ | Sql.Ast.Update _ | Sql.Ast.Delete _
  | Sql.Ast.Create_table_as _ ->
    true
  | _ -> false

let result_of_responses id = function
  | [ r ] -> Wire.Result { id; body = body_of_response r }
  | rs -> Wire.Result { id; body = Wire.Multi (List.map body_of_response rs) }

(* Execute one write script under the (already held) exclusive section.
   Returns the response and how many DML statements ran — per-request
   error isolation: a failing script yields its own Error response and
   must not poison its batchmates. *)
let exec_write_script t session ~id stmts =
  match
    Relational.Errors.guard (fun () ->
        List.map (Youtopia.System.exec t.sys session) stmts)
  with
  | Ok rs ->
    let dml = List.length (List.filter dml_stmt stmts) in
    (result_of_responses id rs, dml)
  | Error kind ->
    Server_stats.on_error t.stats;
    (Wire.Error { id; message = Relational.Errors.kind_to_string kind }, 0)
  | exception exn ->
    Server_stats.on_error t.stats;
    (Wire.Error { id; message = Printexc.to_string exn }, 0)

(* ---------------- write-batching executor ---------------- *)

(* WAL flush/fsync deltas across a batch, attributed in Server_stats *)
let wal_io_snapshot t =
  Relational.Database.wal_io (Youtopia.System.database t.sys)

let wal_io_delta before after =
  match before, after with
  | Some (a : Relational.Wal.io_stats), Some (b : Relational.Wal.io_stats) ->
    (b.Relational.Wal.flushes - a.Relational.Wal.flushes,
     b.Relational.Wal.fsyncs - a.Relational.Wal.fsyncs)
  | _ -> (0, 0)

(** Execute one drained batch: the engine write lock is taken {b once},
    every request runs with per-request error isolation inside a single
    WAL batch scope (one flush, one fsync at scope end), dirty tables
    accumulate across the whole batch and a single {!Coordinator.poke}
    covers them all.  Responses and pushes fan out {i after} the lock is
    released.  If the scope-end durability sync fails, no response has
    been sent yet — every batch member reports the failure instead of a
    false ack. *)
let execute_batch t batch =
  let db = Youtopia.System.database t.sys in
  let io0 = wal_io_snapshot t in
  let results =
    match
      with_engine t (fun () ->
          (* inside the engine lock, before any statement runs: a [kill]
             here dies holding a possibly-unflushed WAL batch scope *)
          Fault.point "server.batch";
          Relational.Database.with_wal_batch db (fun () ->
              let results =
                List.map
                  (fun wr ->
                    let response, dml =
                      exec_write_script t wr.wr_session ~id:wr.wr_id
                        wr.wr_stmts
                    in
                    (wr, response, dml))
                  batch
              in
              let dml_total =
                List.fold_left (fun acc (_, _, d) -> acc + d) 0 results
              in
              if dml_total > 0 then
                ignore (Youtopia.System.poke_batch t.sys ~statements:dml_total);
              results))
    with
    | results -> results
    | exception exn ->
      (* the batch's WAL sync (or the poke) failed after the statements
         ran: acks would lie about durability, so everyone gets the error *)
      Server_stats.on_error t.stats;
      Log.err (fun f -> f "batch failed: %s" (Printexc.to_string exn));
      let message = "batch durability failure: " ^ Printexc.to_string exn in
      List.map
        (fun wr -> (wr, Wire.Error { id = wr.wr_id; message }, 0))
        batch
  in
  let flushes, fsyncs = wal_io_delta io0 (wal_io_snapshot t) in
  Server_stats.on_batch t.stats ~size:(List.length batch) ~flushes ~fsyncs;
  let now = Unix.gettimeofday () in
  (* after the lock release: the batch is durable but not yet acked — a
     [kill] here is the classic committed-but-unacknowledged crash *)
  Fault.point "server.batch.fanout";
  List.iter
    (fun (wr, response, _) ->
      send t wr.wr_conn response;
      Server_stats.on_submit t.stats ~latency:(now -. wr.wr_t0))
    results;
  (* replicas ride the same fan-out discipline as client responses *)
  hub_flush t

(** Drainer thread: wait for write requests, let concurrent writers pile
    in (holding a lone request open up to [max_delay_us]), then execute up
    to [max_batch] of them as one batch.  Keeps draining after {!stop}
    flips [running] until the queue is empty, so accepted requests are
    never dropped. *)
let drainer_loop t =
  let slice =
    Float.min 2e-4 (Float.max 5e-5 (float_of_int t.config.max_delay_us /. 1e6 /. 4.))
  in
  Mutex.lock t.batch_mu;
  let rec loop () =
    if Queue.is_empty t.batchq then begin
      if t.running then begin
        Condition.wait t.batch_cond t.batch_mu;
        loop ()
      end
      (* else: stopped and drained — exit *)
    end
    else begin
      (* Hold the batch open only when the system looks idle (a single
         queued request): waiting helps an isolated writer's batch pick up
         stragglers.  When requests are already piled up, drain and go —
         execution time of this batch is the accumulation window for the
         next one (natural batching), and waiting out the timer would just
         add latency without growing the batch (the writers whose requests
         we hold are blocked on their responses). *)
      (if t.config.max_delay_us > 0 && Queue.length t.batchq <= 1 then begin
         let deadline =
           Unix.gettimeofday () +. (float_of_int t.config.max_delay_us /. 1e6)
         in
         let rec gather () =
           if
             t.running
             && Queue.length t.batchq <= 1
             && Unix.gettimeofday () < deadline
           then begin
             Mutex.unlock t.batch_mu;
             Thread.delay slice;
             Mutex.lock t.batch_mu;
             gather ()
           end
         in
         gather ()
       end);
      let batch = ref [] in
      let n = ref 0 in
      while (not (Queue.is_empty t.batchq)) && !n < t.config.max_batch do
        batch := Queue.pop t.batchq :: !batch;
        incr n
      done;
      Condition.broadcast t.batch_space;
      Mutex.unlock t.batch_mu;
      (* the drainer must survive anything a batch throws (injected faults
         included): a dead drainer would silently stall every writer *)
      (match execute_batch t (List.rev !batch) with
      | () -> ()
      | exception exn ->
        Server_stats.on_error t.stats;
        Log.err (fun f -> f "batch executor: %s" (Printexc.to_string exn)));
      Mutex.lock t.batch_mu;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.batch_mu

(** Reader-side enqueue with backpressure: a full batch queue blocks this
    connection's reader (its own client sees latency, not an error) until
    the drainer makes room. *)
let enqueue_write t wr =
  Mutex.lock t.batch_mu;
  while t.running && Queue.length t.batchq >= t.config.max_batchq do
    Condition.wait t.batch_space t.batch_mu
  done;
  if not t.running then begin
    Mutex.unlock t.batch_mu;
    send t wr.wr_conn
      (Wire.Error { id = wr.wr_id; message = "server shutting down" })
  end
  else begin
    Queue.push wr t.batchq;
    Condition.signal t.batch_cond;
    Mutex.unlock t.batch_mu
  end

(** Submit dispatch.  Parsing happens on the reader thread, outside any
    lock.  Read-only scripts run inline under the shared lock.  Writes
    either enqueue for the batching drainer (responses sent by the
    drainer) or — with [batch_writes] off — run inline under the
    exclusive lock, poking the coordinator themselves after DML so both
    paths are observationally equivalent. *)
let handle_submit t conn session ~id ~sql =
  let t0 = Unix.gettimeofday () in
  match Relational.Errors.guard (fun () -> Sql.Parser.parse_script sql) with
  | Error kind ->
    Server_stats.on_error t.stats;
    send t conn
      (Wire.Error { id; message = Relational.Errors.kind_to_string kind });
    Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0)
  | Ok stmts ->
    if (not (List.for_all read_only_stmt stmts)) && is_replica t then begin
      (* read replica: anything that could mutate goes to the primary *)
      let host, port = Option.get t.config.replica_of in
      Server_stats.on_readonly_rejected t.stats;
      send t conn
        (Wire.Error { id; message = Wire.readonly_redirect ~host ~port });
      Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0)
    end
    else if List.for_all read_only_stmt stmts then begin
      let response =
        match
          with_engine_read t (fun () ->
              List.map (Youtopia.System.exec t.sys session) stmts)
        with
        | rs -> result_of_responses id rs
        | exception Relational.Errors.Db_error kind ->
          Server_stats.on_error t.stats;
          Wire.Error { id; message = Relational.Errors.kind_to_string kind }
        | exception exn ->
          Server_stats.on_error t.stats;
          Wire.Error { id; message = Printexc.to_string exn }
      in
      send t conn response;
      Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0)
    end
    else if t.config.batch_writes then
      enqueue_write t
        { wr_conn = conn; wr_session = session; wr_id = id; wr_stmts = stmts;
          wr_t0 = t0 }
    else begin
      (* per-request exclusive baseline (`batch_writes = false`) *)
      let response =
        with_engine t (fun () ->
            let response, dml = exec_write_script t session ~id stmts in
            if dml > 0 then ignore (Youtopia.System.poke t.sys);
            response)
      in
      send t conn response;
      hub_flush t;
      Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0)
    end

let handle_cancel t ~id ~query_id =
  if is_replica t then begin
    (* cancels mutate the pending store, which lives on the primary *)
    let host, port = Option.get t.config.replica_of in
    Server_stats.on_readonly_rejected t.stats;
    Server_stats.on_error t.stats;
    Wire.Error { id; message = Wire.readonly_redirect ~host ~port }
  end
  else
    match
    with_engine t (fun () ->
        Core.Coordinator.cancel (Youtopia.System.coordinator t.sys) query_id)
  with
  | true -> Wire.Result { id; body = Wire.Listing (Printf.sprintf "cancelled Q%d" query_id) }
  | false ->
    Server_stats.on_error t.stats;
    Wire.Error { id; message = Printf.sprintf "Q%d is not pending" query_id }

let handle_admin t ~id ~what =
  (* admin probes only read engine state, so they share the engine *)
  match what with
  | "server" -> Wire.Stats { id; body = Server_stats.render t.stats }
  | "stats" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_stats t.sys) }
  | "pending" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_pending t.sys) }
  | "answers" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_answers t.sys) }
  | "tables" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_tables t.sys) }
  | "report" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.report t.sys) }
  | "checkpoint" -> (
    (* exclusive: the snapshot must be a consistent cut, and two
       concurrent checkpoints would race on the temp file *)
    match
      Relational.Errors.guard (fun () ->
          with_engine t (fun () -> Youtopia.System.checkpoint t.sys))
    with
    | Ok (lsn, path) ->
      Wire.Stats { id; body = Printf.sprintf "checkpoint lsn=%d path=%s" lsn path }
    | Error kind ->
      Server_stats.on_error t.stats;
      Wire.Error { id; message = Relational.Errors.kind_to_string kind })
  | "replicas" ->
    let body =
      match t.hub with
      | None -> "replicas=0"
      | Some hub ->
        let rows = Replication.Hub.replicas hub in
        String.concat "\n"
          (Printf.sprintf "replicas=%d" (List.length rows)
          :: List.map
               (fun (rid, sent, acked) ->
                 Printf.sprintf "replica=%s sent_lsn=%d acked_lsn=%d" rid sent
                   acked)
               rows)
    in
    Wire.Stats { id; body }
  | other
    when other = "failpoint"
         || (String.length other > 10 && String.sub other 0 10 = "failpoint ")
    -> (
    (* fault-injection control — deliberately lock-free: it must work
       even when a delay failpoint has the engine wedged *)
    let ok body = Wire.Stats { id; body } in
    let err message =
      Server_stats.on_error t.stats;
      Wire.Error { id; message }
    in
    let args =
      String.split_on_char ' ' other
      |> List.filter (fun s -> s <> "")
      |> List.tl
    in
    match args with
    | [] | [ "list" ] ->
      let lines = Fault.list () in
      ok
        (String.concat "\n"
           (Printf.sprintf "failpoints=%d" (List.length lines) :: lines))
    | "arm" :: point :: spec_parts when spec_parts <> [] -> (
      (* the spec is everything after the point name (an error(...)
         message may contain spaces; runs of spaces collapse to one) *)
      let spec = String.concat " " spec_parts in
      match Fault.arm_spec point spec with
      | Ok () -> ok (Printf.sprintf "armed %s=%s" point spec)
      | Result.Error e -> err ("failpoint arm: " ^ e))
    | [ "disarm"; point ] ->
      Fault.disarm point;
      ok ("disarmed " ^ point)
    | [ "clear" ] ->
      Fault.disarm_all ();
      ok "cleared"
    | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some seed ->
        Fault.set_seed seed;
        ok (Printf.sprintf "seed=%d" seed)
      | None -> err ("failpoint seed: not an integer: " ^ n))
    | _ ->
      err
        "failpoint usage: failpoint [list] | failpoint arm <point> <spec> \
         | failpoint disarm <point> | failpoint clear | failpoint seed <n>")
  | other ->
    Server_stats.on_error t.stats;
    Wire.Error { id; message = "unknown admin probe: " ^ other }

(* ---------------- connection lifecycle ---------------- *)

exception Goodbye

(** What the handshake made of this connection: an ordinary client session,
    or a replica's upstream link. *)
type peer =
  | Client_peer of Youtopia.Session.t
  | Replica_peer of Replication.Hub.sink

(** Send a replica its bootstrap stream.  The sink is already registered,
    so every batch committed from here on reaches it live; the replica's
    strict LSN sequencing absorbs the deliberate overlap between the
    bootstrap data and the live stream.

    Two bootstrap shapes: when the WAL file still holds the suffix past
    the replica's last applied LSN, ship those batches straight from the
    file (no lock needed — a torn tail is an incomplete batch the live
    stream covers).  Otherwise — fresh replica against a truncated log, or
    a replica ahead of a restarted primary — stream a full checkpoint
    snapshot cut under the shared engine lock, which excludes writers. *)
let bootstrap_replica t conn ~last_lsn =
  let db = Youtopia.System.database t.sys in
  match db.Relational.Database.wal with
  | None -> raise (Wire.Protocol_error "primary has no WAL; cannot replicate")
  | Some wal ->
    Relational.Wal.sync wal;
    let base = Relational.Wal.base_lsn wal in
    let last = Relational.Wal.last_lsn wal in
    if last_lsn >= base && last_lsn <= last then begin
      let batches =
        Replication.catchup_batches ~wal_path:(Relational.Wal.path wal)
          ~after_lsn:last_lsn
      in
      let sent_at_us = Replication.now_us () in
      List.iter
        (fun (lsn, records) ->
          List.iter (send t conn)
            (Replication.frames_of_batch ~lsn ~sent_at_us records))
        batches;
      Log.info (fun f ->
          f "conn %d: replica catch-up from lsn %d: %d batch(es) shipped"
            conn.conn_id last_lsn (List.length batches))
    end
    else begin
      let lsn, lines =
        with_engine_read t (fun () ->
            Relational.Wal.sync wal;
            let lsn = Relational.Wal.last_lsn wal in
            ( lsn,
              Relational.Checkpoint.to_lines ~lsn (Youtopia.System.catalog t.sys)
            ))
      in
      List.iter (send t conn) (Replication.frames_of_snapshot ~lsn lines);
      Log.info (fun f ->
          f "conn %d: replica bootstrap snapshot at lsn %d (replica was at %d)"
            conn.conn_id lsn last_lsn)
    end

(** Handshake: the first frame must be a HELLO (client) or RHELLO (replica
    upstream link) speaking our protocol version; the reply is WELCOME (or
    ERROR, then the connection drops). *)
let handshake t conn =
  let payload = Wire.read_frame ~max_frame:t.config.max_frame conn.fd in
  Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
  let version_error version =
    raise
      (Wire.Protocol_error
         (Printf.sprintf "unsupported protocol version %d (server speaks %d)"
            version Wire.protocol_version))
  in
  match Wire.decode_request payload with
  | Wire.Hello { version; user } when version = Wire.protocol_version ->
    let session = Youtopia.System.session t.sys user in
    Youtopia.Session.set_listener session
      (Some
         (fun n ->
           Server_stats.on_push t.stats;
           send t conn (Wire.Push n)));
    send t conn
      (Wire.Welcome { version = Wire.protocol_version; banner = t.config.banner });
    Client_peer session
  | Wire.Hello { version; _ } -> version_error version
  | Wire.Replica_hello { version; replica_id; last_lsn }
    when version = Wire.protocol_version -> (
    match t.hub with
    | None ->
      raise
        (Wire.Protocol_error
           "this server does not ship WAL (no WAL attached, or replica mode)")
    | Some hub ->
      (* register before cutting the bootstrap so no batch falls between
         the snapshot/suffix and the live stream *)
      let sink =
        Replication.Hub.register hub ~replica_id
          ~send:(fun r -> send t conn r)
      in
      Server_stats.on_replica_connect t.stats;
      (match
         send t conn
           (Wire.Welcome
              { version = Wire.protocol_version; banner = t.config.banner });
         bootstrap_replica t conn ~last_lsn
       with
      | () -> ()
      | exception e ->
        Replication.Hub.unregister hub sink;
        Server_stats.on_replica_disconnect t.stats;
        raise e);
      Replica_peer sink)
  | Wire.Replica_hello { version; _ } -> version_error version
  | _ -> raise (Wire.Protocol_error "expected HELLO as the first frame")

let reader_loop t conn =
  let peer = ref None in
  (try
     let p = handshake t conn in
     peer := Some p;
     match p with
     | Client_peer s ->
       let rec loop () =
         let payload = Wire.read_frame ~max_frame:t.config.max_frame conn.fd in
         Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
         (match Wire.decode_request payload with
         | Wire.Hello _ | Wire.Replica_hello _ ->
           raise (Wire.Protocol_error "duplicate HELLO")
         | Wire.Repl_ack _ ->
           raise (Wire.Protocol_error "RACK on a client connection")
         | Wire.Submit { id; sql } -> handle_submit t conn s ~id ~sql
         | Wire.Cancel { id; query_id } -> send t conn (handle_cancel t ~id ~query_id)
         | Wire.Admin { id; what } -> send t conn (handle_admin t ~id ~what)
         | Wire.Ping { id; payload } -> send t conn (Wire.Pong { id; payload })
         | Wire.Bye -> raise Goodbye);
         loop ()
       in
       loop ()
     | Replica_peer sink ->
       (* a replica link only ever sends acknowledgements *)
       let rec loop () =
         let payload = Wire.read_frame ~max_frame:t.config.max_frame conn.fd in
         Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
         (match Wire.decode_request payload with
         | Wire.Repl_ack { lsn } -> Replication.Hub.ack sink ~lsn
         | Wire.Bye -> raise Goodbye
         | _ ->
           raise (Wire.Protocol_error "unexpected frame on a replica link"));
         loop ()
       in
       loop ()
   with
  | Wire.Closed | Goodbye -> ()
  | Wire.Protocol_error m ->
    Server_stats.on_error t.stats;
    Log.debug (fun f -> f "conn %d: protocol error: %s" conn.conn_id m);
    send t conn (Wire.Error { id = 0; message = m })
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
    Log.debug (fun f -> f "conn %d: read timeout" conn.conn_id);
    send t conn (Wire.Error { id = 0; message = "read timeout; closing" })
  | Unix.Unix_error _ -> ()
  | exn ->
    (* any other decode/dispatch failure: the teardown below must still
       run, or the session and fd leak and the writer waits forever *)
    Server_stats.on_error t.stats;
    Log.debug (fun f ->
        f "conn %d: reader failed: %s" conn.conn_id (Printexc.to_string exn));
    send t conn (Wire.Error { id = 0; message = Printexc.to_string exn }));
  (* teardown: detach the session/sink, drain the writer, close the socket *)
  (match !peer with
  | Some (Client_peer s) ->
    Youtopia.Session.set_listener s None;
    Youtopia.System.close_session t.sys s
  | Some (Replica_peer sink) ->
    (match t.hub with
    | Some hub -> Replication.Hub.unregister hub sink
    | None -> ());
    Server_stats.on_replica_disconnect t.stats
  | None -> ());
  Mutex.lock conn.out_mu;
  conn.closing <- true;
  Condition.signal conn.out_cond;
  Mutex.unlock conn.out_mu;
  (match conn.writer with Some th -> Thread.join th | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_mu;
  Hashtbl.remove t.conns conn.conn_id;
  Mutex.unlock t.conns_mu;
  Server_stats.on_disconnect t.stats;
  Log.debug (fun f -> f "conn %d: closed" conn.conn_id)

let spawn_connection t fd =
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  if t.config.read_timeout > 0. then
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.read_timeout;
  Mutex.lock t.conns_mu;
  let conn_id = t.next_conn_id in
  t.next_conn_id <- conn_id + 1;
  let conn =
    {
      conn_id;
      fd;
      outq = Queue.create ();
      out_mu = Mutex.create ();
      out_cond = Condition.create ();
      closing = false;
      reader = None;
      writer = None;
    }
  in
  Hashtbl.replace t.conns conn_id conn;
  Mutex.unlock t.conns_mu;
  Server_stats.on_connect t.stats;
  conn.writer <- Some (Thread.create (fun () -> writer_loop t conn) ());
  conn.reader <- Some (Thread.create (fun () -> reader_loop t conn) ());
  Log.debug (fun f -> f "conn %d: accepted" conn_id)

let accept_loop t =
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _addr -> spawn_connection t fd
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
      () (* listen socket closed during shutdown, or a racy abort *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
      (* e.g. EMFILE/ENFILE under fd exhaustion: keep accepting once fds
         free up; back off briefly so a persistent error does not spin *)
      if t.running then begin
        Server_stats.on_error t.stats;
        Log.err (fun f -> f "accept: %s; retrying" (Unix.error_message err));
        Thread.delay 0.05
      end
  done

(* ---------------- lifecycle ---------------- *)

let start ?(config = default_config) sys =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (match Unix.bind listen_fd addr with
  | () -> ()
  | exception e ->
    Unix.close listen_fd;
    raise e);
  Unix.listen listen_fd config.backlog;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let hub =
    match
      (config.replica_of, (Youtopia.System.database sys).Relational.Database.wal)
    with
    | None, Some wal ->
      let hub = Replication.Hub.create () in
      Replication.Hub.attach hub wal;
      Some hub
    | _ -> None
  in
  let t =
    {
      sys;
      config;
      stats = Server_stats.create ();
      listen_fd;
      bound_port;
      engine_lock = Rwlock.create ();
      conns = Hashtbl.create 64;
      conns_mu = Mutex.create ();
      next_conn_id = 1;
      running = true;
      accept_thread = None;
      batchq = Queue.create ();
      batch_mu = Mutex.create ();
      batch_cond = Condition.create ();
      batch_space = Condition.create ();
      drainer = None;
      hub;
      replica = None;
    }
  in
  (match config.durability with
  | Some d ->
    Relational.Database.set_durability (Youtopia.System.database sys) d
  | None -> ());
  (match config.replica_of with
  | Some (host, rport) ->
    (* replica mode: tail the primary, applying under the engine write
       lock so local reads always see whole batches *)
    let catalog = Youtopia.System.catalog sys in
    let cb =
      {
        Replication.Replica.load_snapshot =
          (fun ~lsn snapshot ->
            with_engine t (fun () -> Relational.Catalog.adopt catalog snapshot);
            Server_stats.on_repl_snapshot t.stats ~lsn);
        apply_batch =
          (fun ~lsn:_ records ->
            with_engine t (fun () ->
                ignore (Relational.Wal.apply_batches catalog records)));
        notify =
          (fun ev ->
            match ev with
            | Replication.Replica.Connected ->
              Server_stats.set_repl_upstream t.stats true
            | Replication.Replica.Disconnected _ ->
              Server_stats.set_repl_upstream t.stats false;
              Server_stats.on_repl_reconnect t.stats
            | Replication.Replica.Snapshot_loaded _ -> ()
            | Replication.Replica.Batch_applied { lsn; lag_lsn; lag_ms } ->
              Server_stats.on_repl_apply t.stats ~lsn ~seen:(lsn + lag_lsn)
                ~lag_lsn ~lag_ms);
      }
    in
    t.replica <-
      Some
        (Replication.Replica.start ~host ~port:rport
           ~replica_id:config.replica_id cb)
  | None -> ());
  if config.batch_writes then
    t.drainer <- Some (Thread.create (fun () -> drainer_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  Log.info (fun f ->
      f "listening on %s:%d%s" config.host bound_port
        (match config.replica_of with
        | Some (h, p) -> Printf.sprintf " (read replica of %s:%d)" h p
        | None -> ""));
  t

(** Graceful shutdown: stop accepting, nudge every connection's reader off
    its blocking read, and join all threads.  Queued responses are still
    flushed by each writer before its socket closes. *)
let stop t =
  if t.running then begin
    t.running <- false;
    (* stop tailing the primary before tearing local state down *)
    (match t.replica with
    | Some r ->
      Replication.Replica.stop r;
      t.replica <- None
    | None -> ());
    (* wake readers blocked on batch-queue backpressure and the drainer's
       empty-queue wait, so both see [running = false] *)
    Mutex.lock t.batch_mu;
    Condition.broadcast t.batch_space;
    Condition.broadcast t.batch_cond;
    Mutex.unlock t.batch_mu;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* drain the batch queue before tearing connections down: already
       accepted write requests still execute and their responses reach the
       per-connection writers while those are alive (new enqueues are
       refused once [running] is false) *)
    (match t.drainer with
    | Some th ->
      Thread.join th;
      t.drainer <- None
    | None -> ());
    let conns =
      Mutex.lock t.conns_mu;
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_mu;
      cs
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    List.iter
      (fun c -> match c.reader with Some th -> Thread.join th | None -> ())
      conns;
    Log.info (fun f -> f "stopped; %d connection(s) drained" (List.length conns))
  end
