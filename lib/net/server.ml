(** Multi-threaded TCP server exposing one shared {!Youtopia.System.t}.

    Thread model: one accept thread; per connection, one {b reader} thread
    (frames in, dispatch) and one {b writer} thread draining a
    per-connection outbound queue.  Engine work runs under a
    writer-preferring {!Rwlock}: scripts made only of read-only plain SQL
    (SELECT without INTO ANSWER, EXPLAIN, SHOW …) and read-only admin
    probes share the engine, while anything that can mutate — DML, DDL,
    entangled submissions (match + joint atomic fulfilment), cancels — is
    exclusive, so the coordination path still never interleaves with other
    statements.  SQL is parsed {i outside} the lock.  Slow clients never
    hold the engine: the reader computes a response under the engine lock,
    enqueues it, and the writer thread owns the socket send.

    Push delivery: each connection's handshake creates a session for the
    connection's user and installs a {!Youtopia.Session.set_listener}
    hand-off, so the coordinator's notification — raised inside some other
    connection's fulfilment, under the engine lock — is enqueued on the
    owner's outbound queue immediately and hits the wire as a [PUSH] frame
    without any polling. *)

let log_src = Logs.Src.create "youtopia.net" ~doc:"Youtopia network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  backlog : int;
  max_frame : int;
  read_timeout : float;  (** seconds a reader waits for a frame; 0 = forever *)
  max_outq : int;
      (** frames a connection may have queued outbound before it is
          dropped as a slow consumer *)
  banner : string;
  serialize_reads : bool;
      (** run read-only scripts in the exclusive section too — the
          global-mutex baseline for the concurrency benchmark *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7077;
    backlog = 64;
    max_frame = Wire.default_max_frame;
    read_timeout = 0.;
    max_outq = 1024;
    banner = "youtopia";
    serialize_reads = false;
  }

type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  outq : string Queue.t;
  out_mu : Mutex.t;
  out_cond : Condition.t;
  mutable closing : bool;
  mutable reader : Thread.t option;
  mutable writer : Thread.t option;
}

type t = {
  sys : Youtopia.System.t;
  config : config;
  stats : Server_stats.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  engine_lock : Rwlock.t;
  conns : (int, conn) Hashtbl.t;
  conns_mu : Mutex.t;
  mutable next_conn_id : int;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
}

let port t = t.bound_port
let stats t = t.stats
let system t = t.sys

(* ---------------- engine access ---------------- *)

let with_engine t f =
  let waited = ref false in
  let r =
    Rwlock.with_write ~on_wait:(fun () -> waited := true) t.engine_lock f
  in
  Server_stats.on_engine_write t.stats ~waited:!waited;
  r

let with_engine_read t f =
  if t.config.serialize_reads then with_engine t f
  else begin
    let waited = ref false in
    let r =
      Rwlock.with_read ~on_wait:(fun () -> waited := true) t.engine_lock f
    in
    Server_stats.on_engine_read t.stats ~waited:!waited;
    r
  end

(** A statement the engine can run under the shared lock: it touches no
    table data, no pending store and no session transaction state.  SELECT
    INTO ANSWER is a coordinator submission (exclusive); ANALYZE and the
    transaction controls mutate engine state; EXPLAIN only plans. *)
let read_only_stmt : Sql.Ast.statement -> bool = function
  | Sql.Ast.Select s -> s.Sql.Ast.into_answer = []
  | Sql.Ast.Explain _ | Sql.Ast.Explain_analyze _ | Sql.Ast.Show_tables
  | Sql.Ast.Show_pending ->
    true
  | _ -> false

(* ---------------- outbound queue ---------------- *)

(** Enqueue for the writer thread, bounded by [config.max_outq]: a peer
    that stops reading while frames keep arriving (the writer blocked in
    [write], the queue growing) is dropped rather than buffered without
    limit.  The fd shutdown kicks both the blocked writer and the
    reader's pending read, so normal teardown runs. *)
let enqueue t conn payload =
  Mutex.lock conn.out_mu;
  let overflow =
    if conn.closing then false
    else if Queue.length conn.outq >= t.config.max_outq then begin
      conn.closing <- true;
      Queue.clear conn.outq;
      Condition.signal conn.out_cond;
      true
    end
    else begin
      Queue.push payload conn.outq;
      Condition.signal conn.out_cond;
      false
    end
  in
  Mutex.unlock conn.out_mu;
  if overflow then begin
    Server_stats.on_error t.stats;
    Log.warn (fun f ->
        f "conn %d: slow consumer, %d frames queued; dropping" conn.conn_id
          t.config.max_outq);
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

let send t conn response = enqueue t conn (Wire.encode_response response)

(** Writer thread body: drain the queue to the socket; exit once the
    connection is closing {i and} the queue is empty, so queued frames
    (final errors, goodbye-time pushes) still reach the peer. *)
let writer_loop t conn =
  let rec next () =
    Mutex.lock conn.out_mu;
    let rec wait () =
      if Queue.is_empty conn.outq && not conn.closing then begin
        Condition.wait conn.out_cond conn.out_mu;
        wait ()
      end
    in
    wait ();
    let item = if Queue.is_empty conn.outq then None else Some (Queue.pop conn.outq) in
    Mutex.unlock conn.out_mu;
    match item with
    | None -> () (* closing and drained *)
    | Some payload ->
      (match Wire.write_frame ~max_frame:t.config.max_frame conn.fd payload with
      | () ->
        Server_stats.on_frame_out t.stats ~bytes:(String.length payload + 4);
        next ()
      | exception (Wire.Closed | Wire.Protocol_error _ | Unix.Unix_error _) ->
        (* peer gone or unwritable: stop draining; the reader notices EOF *)
        Mutex.lock conn.out_mu;
        conn.closing <- true;
        Queue.clear conn.outq;
        Mutex.unlock conn.out_mu)
  in
  next ()

(* ---------------- request handling ---------------- *)

let rec body_of_outcome (o : Core.Coordinator.outcome) : Wire.result_body =
  match o with
  | Core.Coordinator.Rejected m -> Wire.Rejected m
  | Core.Coordinator.Answered n -> Wire.Answered n
  | Core.Coordinator.Registered id -> Wire.Registered id
  | Core.Coordinator.Multi os -> Wire.Multi (List.map body_of_outcome os)

let body_of_response : Youtopia.System.response -> Wire.result_body = function
  | Youtopia.System.Sql r -> Wire.Sql_result (Sql.Run.result_to_string r)
  | Youtopia.System.Coordination o -> body_of_outcome o
  | Youtopia.System.Pending_listing s -> Wire.Listing s

let handle_submit t session ~id ~sql =
  let t0 = Unix.gettimeofday () in
  let response =
    match
      Relational.Errors.guard (fun () ->
          (* parse outside the engine lock; only execution needs it *)
          let stmts = Sql.Parser.parse_script sql in
          let section =
            if List.for_all read_only_stmt stmts then with_engine_read t
            else with_engine t
          in
          section (fun () ->
              List.map (Youtopia.System.exec t.sys session) stmts))
    with
    | Ok [ r ] -> Wire.Result { id; body = body_of_response r }
    | Ok rs -> Wire.Result { id; body = Wire.Multi (List.map body_of_response rs) }
    | Error kind ->
      Server_stats.on_error t.stats;
      Wire.Error { id; message = Relational.Errors.kind_to_string kind }
    | exception exn ->
      Server_stats.on_error t.stats;
      Wire.Error { id; message = Printexc.to_string exn }
  in
  Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0);
  response

let handle_cancel t ~id ~query_id =
  match
    with_engine t (fun () ->
        Core.Coordinator.cancel (Youtopia.System.coordinator t.sys) query_id)
  with
  | true -> Wire.Result { id; body = Wire.Listing (Printf.sprintf "cancelled Q%d" query_id) }
  | false ->
    Server_stats.on_error t.stats;
    Wire.Error { id; message = Printf.sprintf "Q%d is not pending" query_id }

let handle_admin t ~id ~what =
  (* admin probes only read engine state, so they share the engine *)
  match what with
  | "server" -> Wire.Stats { id; body = Server_stats.render t.stats }
  | "stats" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_stats t.sys) }
  | "pending" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_pending t.sys) }
  | "answers" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_answers t.sys) }
  | "tables" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_tables t.sys) }
  | "report" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.report t.sys) }
  | other ->
    Server_stats.on_error t.stats;
    Wire.Error { id; message = "unknown admin probe: " ^ other }

(* ---------------- connection lifecycle ---------------- *)

exception Goodbye

(** Handshake: the first frame must be a HELLO speaking our protocol
    version; the reply is WELCOME (or ERROR, then the connection drops). *)
let handshake t conn =
  let payload = Wire.read_frame ~max_frame:t.config.max_frame conn.fd in
  Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
  match Wire.decode_request payload with
  | Wire.Hello { version; user } when version = Wire.protocol_version ->
    let session = Youtopia.System.session t.sys user in
    Youtopia.Session.set_listener session
      (Some
         (fun n ->
           Server_stats.on_push t.stats;
           send t conn (Wire.Push n)));
    send t conn
      (Wire.Welcome { version = Wire.protocol_version; banner = t.config.banner });
    session
  | Wire.Hello { version; _ } ->
    raise
      (Wire.Protocol_error
         (Printf.sprintf "unsupported protocol version %d (server speaks %d)"
            version Wire.protocol_version))
  | _ -> raise (Wire.Protocol_error "expected HELLO as the first frame")

let reader_loop t conn =
  let session = ref None in
  (try
     let s = handshake t conn in
     session := Some s;
     let rec loop () =
       let payload = Wire.read_frame ~max_frame:t.config.max_frame conn.fd in
       Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
       (match Wire.decode_request payload with
       | Wire.Hello _ -> raise (Wire.Protocol_error "duplicate HELLO")
       | Wire.Submit { id; sql } -> send t conn (handle_submit t s ~id ~sql)
       | Wire.Cancel { id; query_id } -> send t conn (handle_cancel t ~id ~query_id)
       | Wire.Admin { id; what } -> send t conn (handle_admin t ~id ~what)
       | Wire.Ping { id; payload } -> send t conn (Wire.Pong { id; payload })
       | Wire.Bye -> raise Goodbye);
       loop ()
     in
     loop ()
   with
  | Wire.Closed | Goodbye -> ()
  | Wire.Protocol_error m ->
    Server_stats.on_error t.stats;
    Log.debug (fun f -> f "conn %d: protocol error: %s" conn.conn_id m);
    send t conn (Wire.Error { id = 0; message = m })
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
    Log.debug (fun f -> f "conn %d: read timeout" conn.conn_id);
    send t conn (Wire.Error { id = 0; message = "read timeout; closing" })
  | Unix.Unix_error _ -> ()
  | exn ->
    (* any other decode/dispatch failure: the teardown below must still
       run, or the session and fd leak and the writer waits forever *)
    Server_stats.on_error t.stats;
    Log.debug (fun f ->
        f "conn %d: reader failed: %s" conn.conn_id (Printexc.to_string exn));
    send t conn (Wire.Error { id = 0; message = Printexc.to_string exn }));
  (* teardown: detach the session, drain the writer, close the socket *)
  (match !session with
  | Some s ->
    Youtopia.Session.set_listener s None;
    Youtopia.System.close_session t.sys s
  | None -> ());
  Mutex.lock conn.out_mu;
  conn.closing <- true;
  Condition.signal conn.out_cond;
  Mutex.unlock conn.out_mu;
  (match conn.writer with Some th -> Thread.join th | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_mu;
  Hashtbl.remove t.conns conn.conn_id;
  Mutex.unlock t.conns_mu;
  Server_stats.on_disconnect t.stats;
  Log.debug (fun f -> f "conn %d: closed" conn.conn_id)

let spawn_connection t fd =
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  if t.config.read_timeout > 0. then
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.read_timeout;
  Mutex.lock t.conns_mu;
  let conn_id = t.next_conn_id in
  t.next_conn_id <- conn_id + 1;
  let conn =
    {
      conn_id;
      fd;
      outq = Queue.create ();
      out_mu = Mutex.create ();
      out_cond = Condition.create ();
      closing = false;
      reader = None;
      writer = None;
    }
  in
  Hashtbl.replace t.conns conn_id conn;
  Mutex.unlock t.conns_mu;
  Server_stats.on_connect t.stats;
  conn.writer <- Some (Thread.create (fun () -> writer_loop t conn) ());
  conn.reader <- Some (Thread.create (fun () -> reader_loop t conn) ());
  Log.debug (fun f -> f "conn %d: accepted" conn_id)

let accept_loop t =
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _addr -> spawn_connection t fd
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
      () (* listen socket closed during shutdown, or a racy abort *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
      (* e.g. EMFILE/ENFILE under fd exhaustion: keep accepting once fds
         free up; back off briefly so a persistent error does not spin *)
      if t.running then begin
        Server_stats.on_error t.stats;
        Log.err (fun f -> f "accept: %s; retrying" (Unix.error_message err));
        Thread.delay 0.05
      end
  done

(* ---------------- lifecycle ---------------- *)

let start ?(config = default_config) sys =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (match Unix.bind listen_fd addr with
  | () -> ()
  | exception e ->
    Unix.close listen_fd;
    raise e);
  Unix.listen listen_fd config.backlog;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      sys;
      config;
      stats = Server_stats.create ();
      listen_fd;
      bound_port;
      engine_lock = Rwlock.create ();
      conns = Hashtbl.create 64;
      conns_mu = Mutex.create ();
      next_conn_id = 1;
      running = true;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  Log.info (fun f -> f "listening on %s:%d" config.host bound_port);
  t

(** Graceful shutdown: stop accepting, nudge every connection's reader off
    its blocking read, and join all threads.  Queued responses are still
    flushed by each writer before its socket closes. *)
let stop t =
  if t.running then begin
    t.running <- false;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    let conns =
      Mutex.lock t.conns_mu;
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_mu;
      cs
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    List.iter
      (fun c -> match c.reader with Some th -> Thread.join th | None -> ())
      conns;
    Log.info (fun f -> f "stopped; %d connection(s) drained" (List.length conns))
  end
