(** TCP server exposing one shared {!Youtopia.System.t}.

    Two connection models share one dispatch/executor core:

    {b Event model} (default): one accept thread plus [config.event_loops]
    event-loop workers, each multiplexing its share of {e non-blocking}
    sockets via {!Netpoll} (a [poll(2)] stub, with a sharded-[select]
    fallback).  Reads go through the incremental {!Wire.Decoder} so a
    partial frame never blocks a loop; complete frames dispatch inline on
    the loop thread.  Outbound frames queue per connection (bounded by
    [max_outq] — a slow consumer is dropped, never buffered without limit)
    and are flushed by the owning loop under [POLLOUT]; a self-pipe wakeup
    lets any thread (the batch drainer's response fan-out, a coordination
    push raised inside another connection's fulfilment) hand frames to the
    owning loop without blocking.  Backpressure: a connection with
    [max_in_flight] batched writes outstanding loses [POLLIN] interest
    until responses drain.  Idle enforcement is loop-side ([read_timeout]
    deadlines swept by the loop) and {e exempts} connections whose user
    owns a parked pending query — a long coordination wait must not race
    the idle timer — as well as replica links.

    {b Thread model} ([conn_model = Threads], the ablation baseline): per
    connection, one reader thread (decoder-fed frames in, dispatch) and one
    writer thread draining the outbound queue; [SO_RCVTIMEO] provides the
    idle wakeup, with the same parked-query exemption.

    Engine work runs under a writer-preferring {!Rwlock}: read-only scripts
    and admin probes share the engine; anything that can mutate is
    exclusive, via the {b batching executor} (one lock acquisition, one WAL
    group flush, one coordinator poke per batch; responses fan out after
    release).  SQL is parsed {i outside} the lock.  Pushes are handed off
    from the coordinator's fulfilment path straight onto the owning
    connection's outbound queue via {!Youtopia.Session.set_listener}.

    Connections negotiated at protocol ≥ 2 receive bulky payloads
    (replication chunks, large results) as raw-bytes frames
    ({!Wire.encode_response_raw}). *)

let log_src = Logs.Src.create "youtopia.net" ~doc:"Youtopia network server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type conn_model = Event | Threads

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  backlog : int;
  max_frame : int;
  read_timeout : float;  (** seconds a connection may sit idle; 0 = forever *)
  max_outq : int;
      (** frames a connection may have queued outbound before it is
          dropped as a slow consumer *)
  banner : string;
  serialize_reads : bool;
      (** run read-only scripts in the exclusive section too — the
          global-mutex baseline for the concurrency benchmark *)
  batch_writes : bool;
      (** writer requests go through the batching drainer instead of each
          taking the exclusive section alone *)
  max_batch : int;  (** most write requests the drainer executes per batch *)
  max_delay_us : int;
      (** µs the drainer holds a batch open for more writers to join *)
  max_batchq : int;
      (** bound on queued write requests; readers block (backpressure)
          when the queue is full *)
  durability : Relational.Wal.durability option;
      (** applied to the system's WAL at {!start}; [None] leaves the
          database's current mode untouched *)
  replica_of : (string * int) option;
      (** run as a read replica of this primary: writes are rejected with
          a redirect naming it, and an upstream loop bootstraps from a
          streamed snapshot then tails the primary's WAL *)
  replica_id : string;  (** name announced in the replica handshake *)
  conn_model : conn_model;
  event_loops : int;  (** event-loop workers ([Event] model) *)
  max_in_flight : int;
      (** batched writes one connection may have outstanding before the
          loop drops its read interest (event-model backpressure) *)
  max_conns : int;  (** refuse accepts beyond this many live conns; 0 = ∞ *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7077;
    backlog = 64;
    max_frame = Wire.default_max_frame;
    read_timeout = 0.;
    max_outq = 1024;
    banner = "youtopia";
    serialize_reads = false;
    batch_writes = true;
    max_batch = 32;
    max_delay_us = 1_000;
    max_batchq = 256;
    durability = None;
    replica_of = None;
    replica_id = "replica";
    conn_model = Event;
    event_loops = 1;
    max_in_flight = 64;
    max_conns = 0;
  }

(** What the handshake made of a connection: an ordinary client session,
    or a replica's upstream link. *)
type peer =
  | Client_peer of Youtopia.Session.t
  | Replica_peer of Replication.Hub.sink

(** Which flusher owns a connection's socket writes. *)
type home = Home_threads | Home_loop of int

type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  outq : (bool * string) Queue.t;  (** (raw, payload) awaiting the wire *)
  out_mu : Mutex.t;
  out_cond : Condition.t;
  mutable closing : bool;
  mutable raw : bool;  (** negotiated protocol ≥ 2: bulky frames go raw *)
  mutable in_flight : int;  (** batched writes outstanding; under [out_mu] *)
  home : home;
  dec : Wire.Decoder.t;
  mutable peer : peer option;
  mutable last_activity : float;
  mutable close_after_flush : bool;
      (** loop-owned: drain [outq], then tear down *)
  (* loop-private partial-write state: the staged frame being written *)
  mutable wbuf : Bytes.t;
  mutable woff : int;
  mutable wlen : int;
  mutable reader : Thread.t option;  (** thread model only *)
  mutable writer : Thread.t option;  (** thread model only *)
}

(** One writer request parked in the batch queue: everything the drainer
    needs to execute it and fan the response back out. *)
type write_req = {
  wr_conn : conn;
  wr_session : Youtopia.Session.t;
  wr_id : int;
  wr_stmts : Sql.Ast.statement list;  (** parsed outside the engine lock *)
  wr_t0 : float;  (** arrival time, for end-to-end submit latency *)
}

(** One event-loop worker.  [lp_conns] is touched only by the loop thread;
    [lp_mu] guards the [lp_incoming] hand-off queue.  The self-pipe plus
    [lp_waked] coalesces wakeups: whoever flips the flag writes the byte,
    everyone else piggybacks. *)
type loop = {
  lp_index : int;
  lp_wake_r : Unix.file_descr;
  lp_wake_w : Unix.file_descr;
  lp_waked : bool Atomic.t;
  lp_mu : Mutex.t;
  lp_incoming : conn Queue.t;
  lp_conns : (int, conn) Hashtbl.t;
  (* reusable poll arrays, resized as the fd population grows *)
  mutable lp_fds : Unix.file_descr array;
  mutable lp_events : int array;
  mutable lp_revents : int array;
  mutable lp_slots : conn option array;
  mutable lp_thread : Thread.t option;
}

type t = {
  sys : Youtopia.System.t;
  config : config;
  stats : Server_stats.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  engine_lock : Rwlock.t;
  conns : (int, conn) Hashtbl.t;
  conns_mu : Mutex.t;
  mutable next_conn_id : int;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
  (* write-batching executor *)
  batchq : write_req Queue.t;
  batch_mu : Mutex.t;
  batch_cond : Condition.t;  (* work arrived (or shutdown) *)
  batch_space : Condition.t;  (* queue has room again *)
  mutable drainer : Thread.t option;
  (* event core *)
  netpoll : Netpoll.engine;
  loops : loop array;  (** empty under the thread model *)
  mutable next_loop : int;  (** round-robin adoption cursor *)
  mutable loops_running : bool;
      (** loops outlive [running] so the drainer's final fan-out still
          reaches the wire; {!stop} clears this after joining the drainer *)
  (* replication *)
  hub : Replication.Hub.t option;
      (** primary side: committed batches fan out to replica sinks;
          [None] without a WAL or in replica mode *)
  mutable replica : Replication.Replica.t option;
      (** replica side: the upstream loop tailing the primary *)
}

let port t = t.bound_port
let stats t = t.stats
let system t = t.sys
let is_replica t = t.config.replica_of <> None

(** Ship batches noted under the engine lock to connected replicas; called
    after the lock is released, next to the response fan-out. *)
let hub_flush t =
  match t.hub with
  | None -> ()
  | Some hub ->
    Replication.Hub.flush hub;
    let s = Replication.Hub.stats hub in
    Server_stats.set_repl_shipping t.stats
      ~batches:s.Replication.Hub.batches_shipped
      ~records:s.Replication.Hub.records_shipped
      ~last_lsn:s.Replication.Hub.last_shipped_lsn
      ~acked_lsn:s.Replication.Hub.min_acked_lsn

(* ---------------- engine access ---------------- *)

let with_engine t f =
  let waited = ref false in
  let r =
    Rwlock.with_write ~on_wait:(fun () -> waited := true) t.engine_lock f
  in
  Server_stats.on_engine_write t.stats ~waited:!waited;
  r

let with_engine_read t f =
  if t.config.serialize_reads then with_engine t f
  else begin
    let waited = ref false in
    let r =
      Rwlock.with_read ~on_wait:(fun () -> waited := true) t.engine_lock f
    in
    Server_stats.on_engine_read t.stats ~waited:!waited;
    r
  end

(** A statement the engine can run under the shared lock — shared with the
    client's replica routing so both sides agree (see
    {!Sql.Ast.read_only}). *)
let read_only_stmt : Sql.Ast.statement -> bool = Sql.Ast.read_only

(* ---------------- outbound queue ---------------- *)

let wake_byte = Bytes.make 1 '!'

(** Wake a loop out of its poll wait.  The atomic flag coalesces storms of
    wakeups into one pipe byte; the loop drains the pipe {e before}
    clearing the flag, so a waker racing the drain skips its byte but is
    still observed — its work was published before the clear, and the loop
    rebuilds interest right after.  Never blocks: the write end is
    non-blocking and a full pipe already guarantees a pending wakeup. *)
let wake lp =
  if not (Atomic.exchange lp.lp_waked true) then
    try ignore (Unix.write lp.lp_wake_w wake_byte 0 1)
    with Unix.Unix_error _ -> ()

let wake_home t conn =
  match conn.home with
  | Home_threads -> ()
  | Home_loop i -> if i < Array.length t.loops then wake t.loops.(i)

(** Enqueue one (raw, payload) frame for the connection's flusher, bounded
    by [config.max_outq]: a peer that stops reading while frames keep
    arriving is dropped rather than buffered without limit.  The fd
    shutdown kicks a blocked thread-model writer and surfaces as an error
    readiness bit to an event loop, so normal teardown runs either way. *)
let enqueue t conn item =
  Mutex.lock conn.out_mu;
  let overflow =
    if conn.closing then false
    else if Queue.length conn.outq >= t.config.max_outq then begin
      conn.closing <- true;
      Queue.clear conn.outq;
      Condition.signal conn.out_cond;
      true
    end
    else begin
      Queue.push item conn.outq;
      Condition.signal conn.out_cond;
      false
    end
  in
  Mutex.unlock conn.out_mu;
  if overflow then begin
    Server_stats.on_error t.stats;
    Log.warn (fun f ->
        f "conn %d: slow consumer, %d frames queued; dropping" conn.conn_id
          t.config.max_outq);
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end;
  wake_home t conn

(** Encode and enqueue: bulky responses go raw when the connection
    negotiated protocol ≥ 2, the escaped text codec otherwise. *)
let send t conn response =
  match if conn.raw then Wire.encode_response_raw response else None with
  | Some payload ->
    Server_stats.on_raw_frame_out t.stats;
    enqueue t conn (true, payload)
  | None -> enqueue t conn (false, Wire.encode_response response)

(** Thread-model writer body: drain the queue to the socket; exit once the
    connection is closing {i and} the queue is empty, so queued frames
    (final errors, goodbye-time pushes) still reach the peer. *)
let writer_loop t conn =
  let rec next () =
    Mutex.lock conn.out_mu;
    let rec wait () =
      if Queue.is_empty conn.outq && not conn.closing then begin
        Condition.wait conn.out_cond conn.out_mu;
        wait ()
      end
    in
    wait ();
    let item = if Queue.is_empty conn.outq then None else Some (Queue.pop conn.outq) in
    Mutex.unlock conn.out_mu;
    match item with
    | None -> () (* closing and drained *)
    | Some (raw, payload) ->
      (match Wire.write_frame ~max_frame:t.config.max_frame ~raw conn.fd payload with
      | () ->
        Server_stats.on_frame_out t.stats ~bytes:(String.length payload + 4);
        next ()
      | exception (Wire.Closed | Wire.Protocol_error _ | Unix.Unix_error _) ->
        (* peer gone or unwritable: stop draining; the reader notices EOF *)
        Mutex.lock conn.out_mu;
        conn.closing <- true;
        Queue.clear conn.outq;
        Mutex.unlock conn.out_mu)
  in
  next ()

(* A failpoint on a loop seam: [Error] condemns the one connection under
   the seam (the loop itself must survive), [Delay] stalls the loop,
   [Kill] crashes the process. *)
let loop_point name =
  try
    Fault.point name;
    true
  with Fault.Injected _ -> false

(** Flush the connection's staged frame + queue as far as the socket
    allows.  Loop-thread only (the staged wbuf/woff/wlen state is
    loop-owned).  Staging applies the same [wire.send] / [wire.send.drop]
    failpoint semantics as {!Wire.write_frame}. *)
let event_flush t conn =
  if not (loop_point "server.loop.writable") then `Dead
  else begin
    let rec step () =
      if conn.woff < conn.wlen then begin
        match Unix.write conn.fd conn.wbuf conn.woff (conn.wlen - conn.woff) with
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          `Blocked
        | exception Unix.Unix_error _ -> `Dead
        | 0 -> `Dead
        | k ->
          conn.woff <- conn.woff + k;
          if conn.woff >= conn.wlen then begin
            Server_stats.on_frame_out t.stats ~bytes:conn.wlen;
            conn.woff <- 0;
            conn.wlen <- 0
          end;
          step ()
      end
      else begin
        Mutex.lock conn.out_mu;
        let item =
          if Queue.is_empty conn.outq then None else Some (Queue.pop conn.outq)
        in
        Mutex.unlock conn.out_mu;
        match item with
        | None -> `Flushed
        | Some (raw, payload) ->
          if String.length payload > t.config.max_frame then begin
            Server_stats.on_error t.stats;
            Log.err (fun f ->
                f "conn %d: outbound frame of %d bytes exceeds limit %d"
                  conn.conn_id (String.length payload) t.config.max_frame);
            `Dead
          end
          else begin
            match
              try `Skip (Fault.skip "wire.send.drop")
              with Fault.Injected _ -> `Dead
            with
            | `Dead -> `Dead
            | `Skip true -> step () (* frame silently swallowed *)
            | `Skip false -> (
              let frame = Wire.frame_bytes ~raw payload in
              match
                try `Cut (Fault.cut "wire.send" ~len:(Bytes.length frame))
                with Fault.Injected _ -> `Dead
              with
              | `Dead -> `Dead
              | `Cut (Some k) ->
                (* the wire gets only the first [k] bytes, then the
                   connection dies holding a truncated frame *)
                (try ignore (Unix.write conn.fd frame 0 k)
                 with Unix.Unix_error _ -> ());
                `Dead
              | `Cut None ->
                conn.wbuf <- frame;
                conn.woff <- 0;
                conn.wlen <- Bytes.length frame;
                step ())
          end
      end
    in
    match step () with `Dead -> `Dead | `Blocked | `Flushed -> `Ok
  end

(* ---------------- request handling ---------------- *)

let rec body_of_outcome (o : Core.Coordinator.outcome) : Wire.result_body =
  match o with
  | Core.Coordinator.Rejected m -> Wire.Rejected m
  | Core.Coordinator.Answered n -> Wire.Answered n
  | Core.Coordinator.Registered id -> Wire.Registered id
  | Core.Coordinator.Multi os -> Wire.Multi (List.map body_of_outcome os)

let body_of_response : Youtopia.System.response -> Wire.result_body = function
  | Youtopia.System.Sql r -> Wire.Sql_result (Sql.Run.result_to_string r)
  | Youtopia.System.Coordination o -> body_of_outcome o
  | Youtopia.System.Pending_listing s -> Wire.Listing s

(** Statements that mutate table data and can therefore unblock a pending
    coordination: after running any of these the server pokes the
    coordinator (once per batch on the batching path) so parked entangled
    queries see the new rows and pushes go out. *)
let dml_stmt : Sql.Ast.statement -> bool = function
  | Sql.Ast.Insert _ | Sql.Ast.Update _ | Sql.Ast.Delete _
  | Sql.Ast.Create_table_as _ ->
    true
  | _ -> false

(* A fulfilled entangled statement is DML too: the joint fulfilment runs
   its THEN effects against base tables inside the fulfilment transaction
   (e.g. the lock sweeper re-incrementing [Locks.free]), and the
   answer-driven cascade does not follow those — only a poke hands the
   mutated rows to parked waiters. *)
let rec outcome_fulfilled = function
  | Core.Coordinator.Answered _ -> true
  | Core.Coordinator.Multi os -> List.exists outcome_fulfilled os
  | Core.Coordinator.Rejected _ | Core.Coordinator.Registered _ -> false

let response_fulfilled : Youtopia.System.response -> bool = function
  | Youtopia.System.Coordination o -> outcome_fulfilled o
  | Youtopia.System.Sql _ | Youtopia.System.Pending_listing _ -> false

let result_of_responses id = function
  | [ r ] -> Wire.Result { id; body = body_of_response r }
  | rs -> Wire.Result { id; body = Wire.Multi (List.map body_of_response rs) }

(* Execute one write script under the (already held) exclusive section.
   Returns the response and how many DML statements ran — per-request
   error isolation: a failing script yields its own Error response and
   must not poison its batchmates. *)
let exec_write_script t session ~id stmts =
  match
    Relational.Errors.guard (fun () ->
        List.map (Youtopia.System.exec t.sys session) stmts)
  with
  | Ok rs ->
    let dml =
      List.length (List.filter dml_stmt stmts)
      + List.length (List.filter response_fulfilled rs)
    in
    (result_of_responses id rs, dml)
  | Error kind ->
    Server_stats.on_error t.stats;
    (Wire.Error { id; message = Relational.Errors.kind_to_string kind }, 0)
  | exception exn ->
    Server_stats.on_error t.stats;
    (Wire.Error { id; message = Printexc.to_string exn }, 0)

(* ---------------- write-batching executor ---------------- *)

(* WAL flush/fsync deltas across a batch, attributed in Server_stats *)
let wal_io_snapshot t =
  Relational.Database.wal_io (Youtopia.System.database t.sys)

let wal_io_delta before after =
  match before, after with
  | Some (a : Relational.Wal.io_stats), Some (b : Relational.Wal.io_stats) ->
    (b.Relational.Wal.flushes - a.Relational.Wal.flushes,
     b.Relational.Wal.fsyncs - a.Relational.Wal.fsyncs)
  | _ -> (0, 0)

(** Execute one drained batch: the engine write lock is taken {b once},
    every request runs with per-request error isolation inside a single
    WAL batch scope (one flush, one fsync at scope end), dirty tables
    accumulate across the whole batch and a single {!Coordinator.poke}
    covers them all.  Responses and pushes fan out {i after} the lock is
    released.  If the scope-end durability sync fails, no response has
    been sent yet — every batch member reports the failure instead of a
    false ack. *)
let execute_batch t batch =
  let db = Youtopia.System.database t.sys in
  let io0 = wal_io_snapshot t in
  let results =
    match
      with_engine t (fun () ->
          (* inside the engine lock, before any statement runs: a [kill]
             here dies holding a possibly-unflushed WAL batch scope *)
          Fault.point "server.batch";
          Relational.Database.with_wal_batch db (fun () ->
              let results =
                List.map
                  (fun wr ->
                    let response, dml =
                      exec_write_script t wr.wr_session ~id:wr.wr_id
                        wr.wr_stmts
                    in
                    (wr, response, dml))
                  batch
              in
              let dml_total =
                List.fold_left (fun acc (_, _, d) -> acc + d) 0 results
              in
              if dml_total > 0 then
                ignore (Youtopia.System.poke_batch t.sys ~statements:dml_total);
              results))
    with
    | results -> results
    | exception exn ->
      (* the batch's WAL sync (or the poke) failed after the statements
         ran: acks would lie about durability, so everyone gets the error *)
      Server_stats.on_error t.stats;
      Log.err (fun f -> f "batch failed: %s" (Printexc.to_string exn));
      let message = "batch durability failure: " ^ Printexc.to_string exn in
      List.map
        (fun wr -> (wr, Wire.Error { id = wr.wr_id; message }, 0))
        batch
  in
  let flushes, fsyncs = wal_io_delta io0 (wal_io_snapshot t) in
  Server_stats.on_batch t.stats ~size:(List.length batch) ~flushes ~fsyncs;
  let now = Unix.gettimeofday () in
  (* after the lock release: the batch is durable but not yet acked — a
     [kill] here is the classic committed-but-unacknowledged crash *)
  Fault.point "server.batch.fanout";
  List.iter
    (fun (wr, response, _) ->
      (* release the in-flight slot before the response hits the queue, so
         the owning loop's next interest build can restore POLLIN *)
      Mutex.lock wr.wr_conn.out_mu;
      wr.wr_conn.in_flight <- max 0 (wr.wr_conn.in_flight - 1);
      Mutex.unlock wr.wr_conn.out_mu;
      (* count before send: once the response is queued the loop can
         flush it, and a client observing its answer must also observe
         the submit counted *)
      Server_stats.on_submit t.stats ~latency:(now -. wr.wr_t0);
      send t wr.wr_conn response)
    results;
  (* replicas ride the same fan-out discipline as client responses *)
  hub_flush t

(** Drainer thread: wait for write requests, let concurrent writers pile
    in (holding a lone request open up to [max_delay_us]), then execute up
    to [max_batch] of them as one batch.  Keeps draining after {!stop}
    flips [running] until the queue is empty, so accepted requests are
    never dropped. *)
let drainer_loop t =
  let slice =
    Float.min 2e-4 (Float.max 5e-5 (float_of_int t.config.max_delay_us /. 1e6 /. 4.))
  in
  Mutex.lock t.batch_mu;
  let rec loop () =
    if Queue.is_empty t.batchq then begin
      if t.running then begin
        Condition.wait t.batch_cond t.batch_mu;
        loop ()
      end
      (* else: stopped and drained — exit *)
    end
    else begin
      (* Hold the batch open only when the system looks idle (a single
         queued request): waiting helps an isolated writer's batch pick up
         stragglers.  When requests are already piled up, drain and go —
         execution time of this batch is the accumulation window for the
         next one (natural batching), and waiting out the timer would just
         add latency without growing the batch (the writers whose requests
         we hold are blocked on their responses). *)
      (if t.config.max_delay_us > 0 && Queue.length t.batchq <= 1 then begin
         let deadline =
           Unix.gettimeofday () +. (float_of_int t.config.max_delay_us /. 1e6)
         in
         let rec gather () =
           if
             t.running
             && Queue.length t.batchq <= 1
             && Unix.gettimeofday () < deadline
           then begin
             Mutex.unlock t.batch_mu;
             Thread.delay slice;
             Mutex.lock t.batch_mu;
             gather ()
           end
         in
         gather ()
       end);
      let batch = ref [] in
      let n = ref 0 in
      while (not (Queue.is_empty t.batchq)) && !n < t.config.max_batch do
        batch := Queue.pop t.batchq :: !batch;
        incr n
      done;
      Condition.broadcast t.batch_space;
      Mutex.unlock t.batch_mu;
      (* the drainer must survive anything a batch throws (injected faults
         included): a dead drainer would silently stall every writer *)
      (match execute_batch t (List.rev !batch) with
      | () -> ()
      | exception exn ->
        Server_stats.on_error t.stats;
        Log.err (fun f -> f "batch executor: %s" (Printexc.to_string exn)));
      Mutex.lock t.batch_mu;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.batch_mu

(** Reader-side enqueue with backpressure: a full batch queue blocks the
    enqueuing thread — a thread-model reader, or (global backpressure) a
    whole event loop — until the drainer makes room.  On success the
    connection's in-flight count grows; the drainer's fan-out releases
    it. *)
let enqueue_write t wr =
  Mutex.lock t.batch_mu;
  while t.running && Queue.length t.batchq >= t.config.max_batchq do
    Condition.wait t.batch_space t.batch_mu
  done;
  if not t.running then begin
    Mutex.unlock t.batch_mu;
    send t wr.wr_conn
      (Wire.Error { id = wr.wr_id; message = "server shutting down" })
  end
  else begin
    (* bump in_flight before the request becomes visible to the drainer:
       the fan-out's decrement must observe the increment, or the clamp at
       0 turns the late increment into a permanently leaked slot (and,
       after max_in_flight leaks, a connection the loop never reads) *)
    Mutex.lock wr.wr_conn.out_mu;
    wr.wr_conn.in_flight <- wr.wr_conn.in_flight + 1;
    Mutex.unlock wr.wr_conn.out_mu;
    Queue.push wr t.batchq;
    Condition.signal t.batch_cond;
    Mutex.unlock t.batch_mu
  end

(** Submit dispatch.  Parsing happens on the dispatching thread, outside
    any lock.  Read-only scripts run inline under the shared lock.  Writes
    either enqueue for the batching drainer (responses sent by the
    drainer) or — with [batch_writes] off — run inline under the
    exclusive lock, poking the coordinator themselves after DML so both
    paths are observationally equivalent. *)
let handle_submit t conn session ~id ~sql =
  let t0 = Unix.gettimeofday () in
  match Relational.Errors.guard (fun () -> Sql.Parser.parse_script sql) with
  | Error kind ->
    Server_stats.on_error t.stats;
    Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0);
    send t conn
      (Wire.Error { id; message = Relational.Errors.kind_to_string kind })
  | Ok stmts ->
    if (not (List.for_all read_only_stmt stmts)) && is_replica t then begin
      (* read replica: anything that could mutate goes to the primary *)
      let host, port = Option.get t.config.replica_of in
      Server_stats.on_readonly_rejected t.stats;
      Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0);
      send t conn
        (Wire.Error { id; message = Wire.readonly_redirect ~host ~port })
    end
    else if List.for_all read_only_stmt stmts then begin
      let response =
        match
          with_engine_read t (fun () ->
              List.map (Youtopia.System.exec t.sys session) stmts)
        with
        | rs -> result_of_responses id rs
        | exception Relational.Errors.Db_error kind ->
          Server_stats.on_error t.stats;
          Wire.Error { id; message = Relational.Errors.kind_to_string kind }
        | exception exn ->
          Server_stats.on_error t.stats;
          Wire.Error { id; message = Printexc.to_string exn }
      in
      Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0);
      send t conn response
    end
    else if t.config.batch_writes then
      enqueue_write t
        { wr_conn = conn; wr_session = session; wr_id = id; wr_stmts = stmts;
          wr_t0 = t0 }
    else begin
      (* per-request exclusive baseline (`batch_writes = false`) *)
      let response =
        with_engine t (fun () ->
            let response, dml = exec_write_script t session ~id stmts in
            if dml > 0 then ignore (Youtopia.System.poke t.sys);
            response)
      in
      Server_stats.on_submit t.stats ~latency:(Unix.gettimeofday () -. t0);
      send t conn response;
      hub_flush t
    end

let handle_cancel t ~id ~query_id =
  if is_replica t then begin
    (* cancels mutate the pending store, which lives on the primary *)
    let host, port = Option.get t.config.replica_of in
    Server_stats.on_readonly_rejected t.stats;
    Server_stats.on_error t.stats;
    Wire.Error { id; message = Wire.readonly_redirect ~host ~port }
  end
  else
    match
    with_engine t (fun () ->
        Core.Coordinator.cancel (Youtopia.System.coordinator t.sys) query_id)
  with
  | true -> Wire.Result { id; body = Wire.Listing (Printf.sprintf "cancelled Q%d" query_id) }
  | false ->
    Server_stats.on_error t.stats;
    Wire.Error { id; message = Printf.sprintf "Q%d is not pending" query_id }

let handle_admin t ~id ~what =
  (* admin probes only read engine state, so they share the engine *)
  match what with
  | "server" ->
    (* coordination poke counters ride along: plain int reads, no lock *)
    let coord_kv =
      Core.Stats.to_kv
        (Core.Coordinator.stats (Youtopia.System.coordinator t.sys))
    in
    Wire.Stats { id; body = Server_stats.render t.stats ^ "\n" ^ coord_kv }
  | "stats" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_stats t.sys) }
  | "pending" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_pending t.sys) }
  | "answers" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_answers t.sys) }
  | "tables" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.dump_tables t.sys) }
  | "report" -> Wire.Stats { id; body = with_engine_read t (fun () -> Youtopia.Admin.report t.sys) }
  | "checkpoint" -> (
    (* exclusive: the snapshot must be a consistent cut, and two
       concurrent checkpoints would race on the temp file *)
    match
      Relational.Errors.guard (fun () ->
          with_engine t (fun () -> Youtopia.System.checkpoint t.sys))
    with
    | Ok (lsn, path) ->
      Wire.Stats { id; body = Printf.sprintf "checkpoint lsn=%d path=%s" lsn path }
    | Error kind ->
      Server_stats.on_error t.stats;
      Wire.Error { id; message = Relational.Errors.kind_to_string kind })
  | "replicas" ->
    let body =
      match t.hub with
      | None -> "replicas=0"
      | Some hub ->
        let rows = Replication.Hub.replicas hub in
        String.concat "\n"
          (Printf.sprintf "replicas=%d" (List.length rows)
          :: List.map
               (fun (rid, sent, acked) ->
                 Printf.sprintf "replica=%s sent_lsn=%d acked_lsn=%d" rid sent
                   acked)
               rows)
    in
    Wire.Stats { id; body }
  | other
    when other = "failpoint"
         || (String.length other > 10 && String.sub other 0 10 = "failpoint ")
    -> (
    (* fault-injection control — deliberately lock-free: it must work
       even when a delay failpoint has the engine wedged *)
    let ok body = Wire.Stats { id; body } in
    let err message =
      Server_stats.on_error t.stats;
      Wire.Error { id; message }
    in
    let args =
      String.split_on_char ' ' other
      |> List.filter (fun s -> s <> "")
      |> List.tl
    in
    match args with
    | [] | [ "list" ] ->
      let lines = Fault.list () in
      ok
        (String.concat "\n"
           (Printf.sprintf "failpoints=%d" (List.length lines) :: lines))
    | "arm" :: point :: spec_parts when spec_parts <> [] -> (
      (* the spec is everything after the point name (an error(...)
         message may contain spaces; runs of spaces collapse to one) *)
      let spec = String.concat " " spec_parts in
      match Fault.arm_spec point spec with
      | Ok () -> ok (Printf.sprintf "armed %s=%s" point spec)
      | Result.Error e -> err ("failpoint arm: " ^ e))
    | [ "disarm"; point ] ->
      Fault.disarm point;
      ok ("disarmed " ^ point)
    | [ "clear" ] ->
      Fault.disarm_all ();
      ok "cleared"
    | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some seed ->
        Fault.set_seed seed;
        ok (Printf.sprintf "seed=%d" seed)
      | None -> err ("failpoint seed: not an integer: " ^ n))
    | _ ->
      err
        "failpoint usage: failpoint [list] | failpoint arm <point> <spec> \
         | failpoint disarm <point> | failpoint clear | failpoint seed <n>")
  | other ->
    Server_stats.on_error t.stats;
    Wire.Error { id; message = "unknown admin probe: " ^ other }

(* ---------------- handshake and dispatch (both models) ---------------- *)

exception Goodbye

(** Send one frame of a replica's bootstrap burst, keeping the outbound
    queue below a high-water mark so the burst never trips {!enqueue}'s
    slow-consumer overflow — that drop would disconnect the replica, which
    would reconnect with the same LSN and re-trip it forever, so a
    snapshot or catch-up larger than [max_outq] frames could never sync.
    The burst is the server's own doing, not evidence of a slow consumer:
    on a loop-owned connection we {e are} the loop thread (the handshake
    dispatches inline), so flush directly, waiting for writability when
    the socket blocks; on a thread-model connection the writer thread
    drains concurrently, so just wait for it to make room.  A replica
    that genuinely stops reading still gets dropped: no queue progress
    for [stall_limit] seconds is the slow-consumer verdict. *)
let bootstrap_send t conn response =
  let high_water = max 1 (t.config.max_outq / 2) in
  let stall_limit = 30. in
  let qlen () =
    Mutex.lock conn.out_mu;
    let n = Queue.length conn.outq in
    Mutex.unlock conn.out_mu;
    n
  in
  let drop_stalled () =
    Server_stats.on_error t.stats;
    Log.warn (fun f ->
        f "conn %d: replica not draining its bootstrap for %.0fs; dropping"
          conn.conn_id stall_limit);
    Mutex.lock conn.out_mu;
    conn.closing <- true;
    Queue.clear conn.outq;
    Condition.signal conn.out_cond;
    Mutex.unlock conn.out_mu;
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    raise Wire.Closed
  in
  (match conn.home with
  | Home_loop _ ->
    let rec drain ~stalled last =
      if conn.closing then raise Wire.Closed
      else if last >= high_water then begin
        match event_flush t conn with
        | `Dead ->
          Mutex.lock conn.out_mu;
          conn.closing <- true;
          Mutex.unlock conn.out_mu;
          raise Wire.Closed
        | `Ok ->
          let n = qlen () in
          if n >= high_water then
            if n < last then drain ~stalled:0. n
            else if stalled >= stall_limit then drop_stalled ()
            else begin
              (try ignore (Unix.select [] [ conn.fd ] [] 0.5)
               with Unix.Unix_error _ -> ());
              drain ~stalled:(stalled +. 0.5) n
            end
      end
    in
    drain ~stalled:0. (qlen ())
  | Home_threads ->
    let rec wait ~stalled last =
      if conn.closing then raise Wire.Closed
      else if last >= high_water then begin
        Thread.delay 0.002;
        let n = qlen () in
        if n < last then wait ~stalled:0. n
        else if stalled >= stall_limit then drop_stalled ()
        else wait ~stalled:(stalled +. 0.002) n
      end
    in
    wait ~stalled:0. (qlen ()));
  send t conn response

(** Send a replica its bootstrap stream.  The sink is already registered,
    so every batch committed from here on reaches it live; the replica's
    strict LSN sequencing absorbs the deliberate overlap between the
    bootstrap data and the live stream.

    Two bootstrap shapes: when the WAL file still holds the suffix past
    the replica's last applied LSN, ship those batches straight from the
    file (no lock needed — a torn tail is an incomplete batch the live
    stream covers).  Otherwise — fresh replica against a truncated log, or
    a replica ahead of a restarted primary — stream a full checkpoint
    snapshot cut under the shared engine lock, which excludes writers. *)
let bootstrap_replica t conn ~last_lsn =
  let db = Youtopia.System.database t.sys in
  match db.Relational.Database.wal with
  | None -> raise (Wire.Protocol_error "primary has no WAL; cannot replicate")
  | Some wal ->
    Relational.Wal.sync wal;
    let base = Relational.Wal.base_lsn wal in
    let last = Relational.Wal.last_lsn wal in
    if last_lsn >= base && last_lsn <= last then begin
      let batches =
        Replication.catchup_batches ~wal_path:(Relational.Wal.path wal)
          ~after_lsn:last_lsn
      in
      let sent_at_us = Replication.now_us () in
      List.iter
        (fun (lsn, records) ->
          List.iter (bootstrap_send t conn)
            (Replication.frames_of_batch ~lsn ~sent_at_us records))
        batches;
      Log.info (fun f ->
          f "conn %d: replica catch-up from lsn %d: %d batch(es) shipped"
            conn.conn_id last_lsn (List.length batches))
    end
    else begin
      let lsn, lines =
        with_engine_read t (fun () ->
            Relational.Wal.sync wal;
            let lsn = Relational.Wal.last_lsn wal in
            ( lsn,
              Relational.Checkpoint.to_lines ~lsn (Youtopia.System.catalog t.sys)
            ))
      in
      List.iter (bootstrap_send t conn) (Replication.frames_of_snapshot ~lsn lines);
      Log.info (fun f ->
          f "conn %d: replica bootstrap snapshot at lsn %d (replica was at %d)"
            conn.conn_id lsn last_lsn)
    end

(** Handshake: the first frame must be a HELLO (client) or RHELLO (replica
    upstream link) carrying a version in the window {!Wire.negotiate}
    accepts; the reply is WELCOME echoing the negotiated version (or
    ERROR, then the connection drops).  A peer at version ≥ 2 gets bulky
    payloads as raw-bytes frames from here on. *)
let handshake_of_request t conn req =
  let version_error version =
    raise
      (Wire.Protocol_error
         (Printf.sprintf "unsupported protocol version %d (server speaks %d)"
            version Wire.protocol_version))
  in
  match req with
  | Wire.Hello { version; user } -> (
    match Wire.negotiate version with
    | None -> version_error version
    | Some v ->
      conn.raw <- v >= 2;
      let session = Youtopia.System.session t.sys user in
      Youtopia.Session.set_listener session
        (Some
           (fun n ->
             Server_stats.on_push t.stats;
             send t conn (Wire.Push n)));
      send t conn (Wire.Welcome { version = v; banner = t.config.banner });
      Client_peer session)
  | Wire.Replica_hello { version; replica_id; last_lsn } -> (
    match Wire.negotiate version with
    | None -> version_error version
    | Some v -> (
      conn.raw <- v >= 2;
      match t.hub with
      | None ->
        raise
          (Wire.Protocol_error
             "this server does not ship WAL (no WAL attached, or replica mode)")
      | Some hub ->
        (* register before cutting the bootstrap so no batch falls between
           the snapshot/suffix and the live stream *)
        let sink =
          Replication.Hub.register hub ~replica_id
            ~send:(fun r -> send t conn r)
        in
        Server_stats.on_replica_connect t.stats;
        (match
           send t conn (Wire.Welcome { version = v; banner = t.config.banner });
           bootstrap_replica t conn ~last_lsn
         with
        | () -> ()
        | exception e ->
          Replication.Hub.unregister hub sink;
          Server_stats.on_replica_disconnect t.stats;
          raise e);
        Replica_peer sink))
  | _ -> raise (Wire.Protocol_error "expected HELLO as the first frame")

(** Dispatch one decoded (text) frame on a connection, handshaking it
    first if no peer is established yet.  Raises {!Goodbye} on BYE,
    {!Wire.Protocol_error} on anything malformed. *)
let dispatch_frame t conn payload =
  let req = Wire.decode_request payload in
  match conn.peer with
  | None -> conn.peer <- Some (handshake_of_request t conn req)
  | Some (Client_peer s) -> (
    match req with
    | Wire.Hello _ | Wire.Replica_hello _ ->
      raise (Wire.Protocol_error "duplicate HELLO")
    | Wire.Repl_ack _ ->
      raise (Wire.Protocol_error "RACK on a client connection")
    | Wire.Submit { id; sql } -> handle_submit t conn s ~id ~sql
    | Wire.Cancel { id; query_id } -> send t conn (handle_cancel t ~id ~query_id)
    | Wire.Admin { id; what } -> send t conn (handle_admin t ~id ~what)
    | Wire.Ping { id; payload } -> send t conn (Wire.Pong { id; payload })
    | Wire.Bye -> raise Goodbye)
  | Some (Replica_peer sink) -> (
    (* a replica link only ever sends acknowledgements *)
    match req with
    | Wire.Repl_ack { lsn } -> Replication.Hub.ack sink ~lsn
    | Wire.Bye -> raise Goodbye
    | _ -> raise (Wire.Protocol_error "unexpected frame on a replica link"))

(** A connection exempt from idle teardown: replica links (server-push,
    legitimately quiet inbound), and clients whose user owns a parked
    pending query — the whole point of coordination is that such a client
    may wait arbitrarily long for a partner. *)
let idle_exempt t conn =
  match conn.peer with
  | Some (Replica_peer _) -> true
  | Some (Client_peer s) -> (
    let user = Youtopia.Session.user s in
    try
      with_engine_read t (fun () ->
          List.exists
            (fun q -> q.Core.Equery.owner = user)
            (Core.Pending.to_list
               (Core.Coordinator.pending (Youtopia.System.coordinator t.sys))))
    with _ -> false)
  | None -> false

(** Detach whatever the handshake attached: client session + push
    listener, or replica sink. *)
let detach_peer t conn =
  match conn.peer with
  | Some (Client_peer s) ->
    conn.peer <- None;
    Youtopia.Session.set_listener s None;
    Youtopia.System.close_session t.sys s
  | Some (Replica_peer sink) ->
    conn.peer <- None;
    (match t.hub with
    | Some hub -> Replication.Hub.unregister hub sink
    | None -> ());
    Server_stats.on_replica_disconnect t.stats
  | None -> ()

(* ---------------- thread model ---------------- *)

(** Blocking read of the next complete text frame through the connection's
    decoder.  [SO_RCVTIMEO] surfaces idle as EAGAIN/ETIMEDOUT: an exempt
    connection just retries (its partial bytes wait safely in the
    decoder), anyone else propagates the timeout to the reader's error
    arm.  Mirrors the [wire.recv] / [wire.recv.drop] failpoints of
    {!Wire.read_frame} per complete frame. *)
let read_frame_conn t conn scratch =
  let rec next_frame () =
    match Wire.Decoder.next conn.dec with
    | Some f -> f
    | None ->
      let n =
        try Unix.read conn.fd scratch 0 (Bytes.length scratch)
        with
        | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
          as e ->
          if idle_exempt t conn then -1
          else begin
            Server_stats.on_idle_timeout t.stats;
            raise e
          end
      in
      if n = 0 then raise Wire.Closed;
      if n > 0 then begin
        conn.last_activity <- Unix.gettimeofday ();
        Wire.Decoder.feed conn.dec scratch 0 n
      end;
      next_frame ()
  in
  let rec frame () =
    let kind, payload = next_frame () in
    (try Fault.point "wire.recv" with Fault.Injected _ -> raise Wire.Closed);
    if (try Fault.skip "wire.recv.drop" with Fault.Injected _ -> raise Wire.Closed)
    then frame ()
    else
      match kind with
      | Wire.Text -> payload
      | Wire.Raw ->
        raise
          (Wire.Protocol_error
             "unexpected raw frame (connection did not negotiate them)")
  in
  frame ()

(** Thread-model teardown: detach the session/sink, drain the writer,
    close the socket. *)
let thread_teardown t conn =
  detach_peer t conn;
  Mutex.lock conn.out_mu;
  conn.closing <- true;
  Condition.signal conn.out_cond;
  Mutex.unlock conn.out_mu;
  (match conn.writer with Some th -> Thread.join th | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_mu;
  Hashtbl.remove t.conns conn.conn_id;
  Mutex.unlock t.conns_mu;
  Server_stats.on_disconnect t.stats;
  Log.debug (fun f -> f "conn %d: closed" conn.conn_id)

let reader_loop t conn =
  let scratch = Bytes.create 65536 in
  (try
     while true do
       let payload = read_frame_conn t conn scratch in
       Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
       dispatch_frame t conn payload
     done
   with
  | Wire.Closed | Goodbye -> ()
  | Wire.Protocol_error m ->
    Server_stats.on_error t.stats;
    Log.debug (fun f -> f "conn %d: protocol error: %s" conn.conn_id m);
    send t conn (Wire.Error { id = 0; message = m })
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
    Log.debug (fun f -> f "conn %d: read timeout" conn.conn_id);
    send t conn (Wire.Error { id = 0; message = "read timeout; closing" })
  | Unix.Unix_error _ -> ()
  | exn ->
    (* any other decode/dispatch failure: the teardown below must still
       run, or the session and fd leak and the writer waits forever *)
    Server_stats.on_error t.stats;
    Log.debug (fun f ->
        f "conn %d: reader failed: %s" conn.conn_id (Printexc.to_string exn));
    send t conn (Wire.Error { id = 0; message = Printexc.to_string exn }));
  thread_teardown t conn

let make_conn t ~fd ~home =
  Mutex.lock t.conns_mu;
  let conn_id = t.next_conn_id in
  t.next_conn_id <- conn_id + 1;
  let conn =
    {
      conn_id;
      fd;
      outq = Queue.create ();
      out_mu = Mutex.create ();
      out_cond = Condition.create ();
      closing = false;
      raw = false;
      in_flight = 0;
      home;
      dec = Wire.Decoder.create ~max_frame:t.config.max_frame ();
      peer = None;
      last_activity = Unix.gettimeofday ();
      close_after_flush = false;
      wbuf = Bytes.create 0;
      woff = 0;
      wlen = 0;
      reader = None;
      writer = None;
    }
  in
  Hashtbl.replace t.conns conn_id conn;
  Mutex.unlock t.conns_mu;
  Server_stats.on_connect t.stats;
  conn

let spawn_connection t fd =
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  if t.config.read_timeout > 0. then
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.read_timeout;
  let conn = make_conn t ~fd ~home:Home_threads in
  conn.writer <- Some (Thread.create (fun () -> writer_loop t conn) ());
  conn.reader <- Some (Thread.create (fun () -> reader_loop t conn) ());
  Log.debug (fun f -> f "conn %d: accepted" conn.conn_id)

(* ---------------- event model ---------------- *)

(** Event-model teardown, loop thread only. *)
let teardown_conn t lp conn =
  Hashtbl.remove lp.lp_conns conn.conn_id;
  detach_peer t conn;
  Mutex.lock conn.out_mu;
  conn.closing <- true;
  Queue.clear conn.outq;
  Mutex.unlock conn.out_mu;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_mu;
  Hashtbl.remove t.conns conn.conn_id;
  Mutex.unlock t.conns_mu;
  Server_stats.on_disconnect t.stats;
  Log.debug (fun f -> f "conn %d: closed" conn.conn_id)

(** Drain every complete frame the decoder holds, dispatching inline.
    Errors condemn the connection but let queued output (the error
    response included) flush first. *)
let drain_decoder t conn =
  let proto_error m =
    Server_stats.on_error t.stats;
    Log.debug (fun f -> f "conn %d: protocol error: %s" conn.conn_id m);
    send t conn (Wire.Error { id = 0; message = m });
    conn.close_after_flush <- true;
    `Ok
  in
  let rec go () =
    if conn.close_after_flush || conn.closing then `Ok
    else begin
      match
        try `F (Wire.Decoder.next conn.dec)
        with Wire.Protocol_error m -> `Err m
      with
      | `Err m -> proto_error m
      | `F None -> `Ok
      | `F (Some (kind, payload)) -> (
        Server_stats.on_frame_in t.stats ~bytes:(String.length payload + 4);
        if not (loop_point "server.decoder") then `Dead
        else if
          (* mirror Wire.read_frame's failpoints per complete frame *)
          not (loop_point "wire.recv")
        then `Dead
        else begin
          match
            try `Skip (Fault.skip "wire.recv.drop")
            with Fault.Injected _ -> `Dead
          with
          | `Dead -> `Dead
          | `Skip true -> go () (* frame silently dropped *)
          | `Skip false ->
            if kind = Wire.Raw then
              proto_error
                "unexpected raw frame (connection did not negotiate them)"
            else begin
              match dispatch_frame t conn payload with
              | () -> go ()
              | exception Goodbye ->
                conn.close_after_flush <- true;
                `Ok
              | exception Wire.Protocol_error m -> proto_error m
              | exception Wire.Closed -> `Dead
              | exception Unix.Unix_error _ -> `Dead
              | exception exn ->
                Server_stats.on_error t.stats;
                Log.debug (fun f ->
                    f "conn %d: dispatch failed: %s" conn.conn_id
                      (Printexc.to_string exn));
                send t conn
                  (Wire.Error { id = 0; message = Printexc.to_string exn });
                conn.close_after_flush <- true;
                `Ok
            end
        end)
    end
  in
  go ()

(** One readable event: pull whatever the socket has into the decoder and
    dispatch the complete frames.  EOF switches the connection to
    drain-then-close so queued responses still reach a half-closed peer. *)
let event_read t conn scratch =
  if not (loop_point "server.loop.readable") then `Dead
  else begin
    match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      `Ok
    | exception Unix.Unix_error _ -> `Dead
    | 0 ->
      conn.close_after_flush <- true;
      `Ok
    | n ->
      conn.last_activity <- Unix.gettimeofday ();
      Wire.Decoder.feed conn.dec scratch 0 n;
      drain_decoder t conn
  end

let ensure_loop_capacity lp n =
  if Array.length lp.lp_fds < n then begin
    let cap = ref (max 64 (Array.length lp.lp_fds)) in
    while !cap < n do
      cap := !cap * 2
    done;
    lp.lp_fds <- Array.make !cap lp.lp_wake_r;
    lp.lp_events <- Array.make !cap 0;
    lp.lp_revents <- Array.make !cap 0;
    lp.lp_slots <- Array.make !cap None
  end

(** The loop thread: adopt handed-off connections, compute per-connection
    interest (read unless backpressured or draining-to-close, write when
    output is pending), wait, then service readiness — wake pipe first,
    then each ready connection.  On exit (server stop) remaining output is
    flushed best-effort over briefly-blocking sockets so in-flight
    responses reach their clients. *)
let loop_run t lp =
  let scratch = Bytes.create 65536 in
  let wake_buf = Bytes.create 256 in
  let sweep_period =
    if t.config.read_timeout > 0. then
      Float.min 0.25 (Float.max 0.01 (t.config.read_timeout /. 4.))
    else 0.
  in
  (* never block unboundedly: a bounded tick is cheap insurance against
     any wakeup path the flag/pipe protocol fails to cover *)
  let timeout_ms =
    if sweep_period > 0. then max 10 (int_of_float (sweep_period *. 1000.))
    else 250
  in
  let last_sweep = ref (Unix.gettimeofday ()) in
  let adopt () =
    Mutex.lock lp.lp_mu;
    while not (Queue.is_empty lp.lp_incoming) do
      let c = Queue.pop lp.lp_incoming in
      Hashtbl.replace lp.lp_conns c.conn_id c
    done;
    Mutex.unlock lp.lp_mu
  in
  while t.loops_running do
    match
      adopt ();
      (* interest build; connections already condemned tear down here *)
      ensure_loop_capacity lp (Hashtbl.length lp.lp_conns + 1);
      lp.lp_fds.(0) <- lp.lp_wake_r;
      lp.lp_events.(0) <- Netpoll.readable;
      lp.lp_slots.(0) <- None;
      let n = ref 1 in
      let doomed = ref [] in
      Hashtbl.iter
        (fun _ c ->
          (* racy reads by design: wbuf offsets are loop-owned, and the
             queue length / in-flight count / closing flag are word-size
             fields whose stale values cost at most one iteration — the
             producer's wake-pipe byte forces that iteration.  Locking
             out_mu here would mean ~2 lock pairs per connection per
             iteration: the dominant cost at a 10k-connection wall. *)
          let pending_out = c.wlen > c.woff || Queue.length c.outq > 0 in
          let infl = c.in_flight in
          let closing = c.closing in
          (* opportunistic flush: a socket is writable almost always, so
             pushing freshly-queued output here — instead of registering
             POLLOUT and paying a whole poll round-trip first — halves
             the response path.  EAGAIN falls back to POLLOUT below. *)
          let dead = ref false in
          let pending_out =
            if pending_out && not closing then begin
              (match event_flush t c with
              | `Dead -> dead := true
              | `Ok -> ());
              c.wlen > c.woff || Queue.length c.outq > 0
            end
            else pending_out
          in
          if closing || !dead then doomed := c :: !doomed
          else if c.close_after_flush && not pending_out then
            doomed := c :: !doomed
          else begin
            let ev = ref 0 in
            if (not c.close_after_flush) && infl < t.config.max_in_flight
            then ev := Netpoll.readable;
            if pending_out then ev := !ev lor Netpoll.writable;
            lp.lp_fds.(!n) <- c.fd;
            lp.lp_events.(!n) <- !ev;
            lp.lp_slots.(!n) <- Some c;
            incr n
          end)
        lp.lp_conns;
      List.iter (teardown_conn t lp) !doomed;
      Server_stats.on_loop_iteration t.stats ~fds:!n;
      (match
         Netpoll.wait t.netpoll ~fds:lp.lp_fds ~events:lp.lp_events
           ~revents:lp.lp_revents ~nfds:!n ~timeout_ms
       with
      | _ -> ()
      | exception Failure m ->
        Array.fill lp.lp_revents 0 !n 0;
        Log.err (fun f -> f "loop %d: %s" lp.lp_index m);
        Thread.delay 0.01);
      (* wake pipe first: drain, THEN clear the flag.  A waker racing the
         drain sees the flag still set and skips its byte — but its
         enqueue happened before our clear, so the next interest rebuild
         observes it.  Clearing before draining would eat that racer's
         byte while leaving the flag set, silencing every later wake. *)
      if lp.lp_revents.(0) land Netpoll.readable <> 0 then begin
        (try
           while Unix.read lp.lp_wake_r wake_buf 0 (Bytes.length wake_buf) > 0 do
             ()
           done
         with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
        Atomic.set lp.lp_waked false;
        Server_stats.on_loop_wakeup t.stats;
        if not (loop_point "server.loop.wakeup") then
          Server_stats.on_error t.stats
      end;
      for i = 1 to !n - 1 do
        (match lp.lp_slots.(i) with
        | None -> ()
        | Some c ->
          let re = lp.lp_revents.(i) in
          if re <> 0 && not c.closing then begin
            let dead = ref false in
            if re land Netpoll.error <> 0 then dead := true
            else begin
              if
                re land Netpoll.writable <> 0
                && lp.lp_events.(i) land Netpoll.writable <> 0
              then begin
                match event_flush t c with
                | `Dead -> dead := true
                | `Ok -> ()
              end;
              if
                (not !dead)
                && re land Netpoll.readable <> 0
                && lp.lp_events.(i) land Netpoll.readable <> 0
              then begin
                match event_read t c scratch with
                | `Dead -> dead := true
                | `Ok -> ()
              end
            end;
            if !dead then teardown_conn t lp c
          end);
        lp.lp_slots.(i) <- None
      done;
      (* loop-side idle sweep, replacing per-fd SO_RCVTIMEO *)
      if sweep_period > 0. then begin
        let now = Unix.gettimeofday () in
        if now -. !last_sweep >= sweep_period then begin
          last_sweep := now;
          let timed_out =
            Hashtbl.fold
              (fun _ c acc ->
                if
                  (not c.closing)
                  && (not c.close_after_flush)
                  && now -. c.last_activity > t.config.read_timeout
                then c :: acc
                else acc)
              lp.lp_conns []
          in
          List.iter
            (fun c ->
              (* the exemption check takes the engine read lock, so it
                 only runs for connections already past their deadline *)
              if not (idle_exempt t c) then begin
                Server_stats.on_idle_timeout t.stats;
                Log.debug (fun f -> f "conn %d: read timeout" c.conn_id);
                send t c
                  (Wire.Error { id = 0; message = "read timeout; closing" });
                c.close_after_flush <- true
              end)
            timed_out
        end
      end
    with
    | () -> ()
    | exception exn ->
      (* a loop must never die: it owns every one of its connections *)
      Server_stats.on_error t.stats;
      Log.err (fun f ->
          f "loop %d: iteration failed: %s" lp.lp_index
            (Printexc.to_string exn));
      Thread.delay 0.01
  done;
  (* exit: adopt stragglers, flush remaining output over briefly-blocking
     sockets (responses the drainer fanned out during shutdown), then tear
     every connection down *)
  adopt ();
  Hashtbl.iter
    (fun _ c ->
      try
        Unix.clear_nonblock c.fd;
        Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO 0.5;
        if c.woff < c.wlen then
          ignore (Unix.write c.fd c.wbuf c.woff (c.wlen - c.woff));
        let rec drain () =
          Mutex.lock c.out_mu;
          let item =
            if Queue.is_empty c.outq then None else Some (Queue.pop c.outq)
          in
          Mutex.unlock c.out_mu;
          match item with
          | Some (raw, payload) ->
            Wire.write_frame ~max_frame:t.config.max_frame ~raw c.fd payload;
            drain ()
          | None -> ()
        in
        drain ()
      with _ -> ())
    lp.lp_conns;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) lp.lp_conns [] in
  List.iter (teardown_conn t lp) cs

(** Hand a fresh socket to the least-recently-used loop. *)
let adopt_event_conn t fd =
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Unix.set_nonblock fd;
  let lp = t.loops.(t.next_loop mod Array.length t.loops) in
  t.next_loop <- t.next_loop + 1;
  let conn = make_conn t ~fd ~home:(Home_loop lp.lp_index) in
  Mutex.lock lp.lp_mu;
  Queue.push conn lp.lp_incoming;
  let backlog = Queue.length lp.lp_incoming in
  Mutex.unlock lp.lp_mu;
  Server_stats.on_loop_adopt t.stats ~backlog;
  wake lp;
  Log.debug (fun f -> f "conn %d: accepted (loop %d)" conn.conn_id lp.lp_index)

(* ---------------- accept ---------------- *)

let active_conns t =
  Mutex.lock t.conns_mu;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mu;
  n

let accept_loop t =
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      if
        not
          (try
             Fault.point "server.accept";
             true
           with Fault.Injected _ -> false)
      then begin
        Server_stats.on_error t.stats;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else if t.config.max_conns > 0 && active_conns t >= t.config.max_conns
      then begin
        Server_stats.on_conn_refused t.stats;
        Log.warn (fun f ->
            f "refusing connection: %d live (max_conns=%d)" (active_conns t)
              t.config.max_conns);
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        match t.config.conn_model with
        | Threads -> spawn_connection t fd
        | Event -> adopt_event_conn t fd
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
      () (* listen socket closed during shutdown, or a racy abort *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
      (* e.g. EMFILE/ENFILE under fd exhaustion: keep accepting once fds
         free up; back off briefly so a persistent error does not spin *)
      if t.running then begin
        Server_stats.on_error t.stats;
        Log.err (fun f -> f "accept: %s; retrying" (Unix.error_message err));
        Thread.delay 0.05
      end
  done

(* ---------------- lifecycle ---------------- *)

let start ?(config = default_config) sys =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (match Unix.bind listen_fd addr with
  | () -> ()
  | exception e ->
    Unix.close listen_fd;
    raise e);
  Unix.listen listen_fd config.backlog;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let hub =
    match
      (config.replica_of, (Youtopia.System.database sys).Relational.Database.wal)
    with
    | None, Some wal ->
      let hub = Replication.Hub.create () in
      Replication.Hub.attach hub wal;
      Some hub
    | _ -> None
  in
  let netpoll = Netpoll.choose () in
  let loops =
    match config.conn_model with
    | Threads -> [||]
    | Event ->
      Array.init (max 1 config.event_loops) (fun i ->
          let r, w = Unix.pipe () in
          Unix.set_nonblock r;
          Unix.set_nonblock w;
          {
            lp_index = i;
            lp_wake_r = r;
            lp_wake_w = w;
            lp_waked = Atomic.make false;
            lp_mu = Mutex.create ();
            lp_incoming = Queue.create ();
            lp_conns = Hashtbl.create 256;
            lp_fds = Array.make 64 r;
            lp_events = Array.make 64 0;
            lp_revents = Array.make 64 0;
            lp_slots = Array.make 64 None;
            lp_thread = None;
          })
  in
  let t =
    {
      sys;
      config;
      stats = Server_stats.create ();
      listen_fd;
      bound_port;
      engine_lock = Rwlock.create ();
      conns = Hashtbl.create 64;
      conns_mu = Mutex.create ();
      next_conn_id = 1;
      running = true;
      accept_thread = None;
      batchq = Queue.create ();
      batch_mu = Mutex.create ();
      batch_cond = Condition.create ();
      batch_space = Condition.create ();
      drainer = None;
      netpoll;
      loops;
      next_loop = 0;
      loops_running = true;
      hub;
      replica = None;
    }
  in
  Server_stats.set_loops t.stats (Array.length loops);
  (match config.durability with
  | Some d ->
    Relational.Database.set_durability (Youtopia.System.database sys) d
  | None -> ());
  (match config.replica_of with
  | Some (host, rport) ->
    (* replica mode: tail the primary, applying under the engine write
       lock so local reads always see whole batches *)
    let catalog = Youtopia.System.catalog sys in
    let cb =
      {
        Replication.Replica.load_snapshot =
          (fun ~lsn snapshot ->
            with_engine t (fun () -> Relational.Catalog.adopt catalog snapshot);
            Server_stats.on_repl_snapshot t.stats ~lsn);
        apply_batch =
          (fun ~lsn:_ records ->
            with_engine t (fun () ->
                ignore (Relational.Wal.apply_batches catalog records)));
        notify =
          (fun ev ->
            match ev with
            | Replication.Replica.Connected ->
              Server_stats.set_repl_upstream t.stats true
            | Replication.Replica.Disconnected _ ->
              Server_stats.set_repl_upstream t.stats false;
              Server_stats.on_repl_reconnect t.stats
            | Replication.Replica.Snapshot_loaded _ -> ()
            | Replication.Replica.Batch_applied { lsn; lag_lsn; lag_ms } ->
              Server_stats.on_repl_apply t.stats ~lsn ~seen:(lsn + lag_lsn)
                ~lag_lsn ~lag_ms);
      }
    in
    t.replica <-
      Some
        (Replication.Replica.start ~host ~port:rport
           ~replica_id:config.replica_id cb)
  | None -> ());
  if config.batch_writes then
    t.drainer <- Some (Thread.create (fun () -> drainer_loop t) ());
  Array.iter
    (fun lp -> lp.lp_thread <- Some (Thread.create (fun () -> loop_run t lp) ()))
    t.loops;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  Log.info (fun f ->
      f "listening on %s:%d%s%s" config.host bound_port
        (match config.conn_model with
        | Event ->
          Printf.sprintf " (event core: %d loop(s), %s)" (Array.length t.loops)
            (Netpoll.engine_name netpoll)
        | Threads -> " (thread-per-connection)")
        (match config.replica_of with
        | Some (h, p) -> Printf.sprintf " (read replica of %s:%d)" h p
        | None -> ""));
  t

(** Graceful shutdown: stop accepting, drain the batch queue so accepted
    writes still answer, then retire the connection owners — event loops
    flush remaining output before closing their sockets; thread-model
    readers are kicked off their blocking reads and their writers drain.
    Idempotent. *)
let stop t =
  if t.running then begin
    t.running <- false;
    (* stop tailing the primary before tearing local state down *)
    (match t.replica with
    | Some r ->
      Replication.Replica.stop r;
      t.replica <- None
    | None -> ());
    (* wake readers blocked on batch-queue backpressure and the drainer's
       empty-queue wait, so both see [running = false] *)
    Mutex.lock t.batch_mu;
    Condition.broadcast t.batch_space;
    Condition.broadcast t.batch_cond;
    Mutex.unlock t.batch_mu;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* drain the batch queue before retiring connection owners: already
       accepted write requests still execute and their responses reach the
       outbound queues while a flusher is alive to send them (new
       enqueues are refused once [running] is false) *)
    (match t.drainer with
    | Some th ->
      Thread.join th;
      t.drainer <- None
    | None -> ());
    (* event loops: only now may they exit — their final pass flushes
       everything the drainer just fanned out *)
    t.loops_running <- false;
    Array.iter wake t.loops;
    Array.iter
      (fun lp ->
        (match lp.lp_thread with Some th -> Thread.join th | None -> ());
        (try Unix.close lp.lp_wake_r with Unix.Unix_error _ -> ());
        (try Unix.close lp.lp_wake_w with Unix.Unix_error _ -> ()))
      t.loops;
    (* thread model: kick readers off their blocking reads and join *)
    let conns =
      Mutex.lock t.conns_mu;
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_mu;
      cs
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    List.iter
      (fun c -> match c.reader with Some th -> Thread.join th | None -> ())
      conns;
    Log.info (fun f -> f "stopped; %d connection(s) drained" (List.length conns))
  end
