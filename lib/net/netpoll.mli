(** Readiness multiplexing for the event-driven server core.

    Two engines behind one interface: a [poll(2)] C stub (no fd-count
    ceiling) and a pure-OCaml sharded [Unix.select] fallback for builds or
    platforms where the stub is unwelcome.  The engine is chosen once at
    server start — [YOUTOPIA_NETPOLL=select] (or [poll]) overrides the
    default. *)

type engine = Poll | Select

val choose : unit -> engine
(** Honours the [YOUTOPIA_NETPOLL] environment variable; defaults to
    {!Poll}. *)

val engine_name : engine -> string

(** Interest / readiness bits, or-able. *)

val readable : int
val writable : int
val error : int

val wait :
  engine ->
  fds:Unix.file_descr array ->
  events:int array ->
  revents:int array ->
  nfds:int ->
  timeout_ms:int ->
  int
(** [wait eng ~fds ~events ~revents ~nfds ~timeout_ms] fills
    [revents.(0..nfds-1)] with readiness bits and returns the number of
    ready fds (0 on timeout or EINTR).  [timeout_ms < 0] blocks
    indefinitely.  The caller must keep index 0 as its wakeup fd with
    {!readable} interest: the select fallback shards the fd space and only
    blocks on the shard containing index 0, sweeping the rest with a zero
    timeout.  Closed-out fds surface as {!error} rather than an
    exception. *)
