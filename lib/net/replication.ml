(** Checkpoint + WAL-shipping replication.

    The primary keeps a {!Hub}: every committed WAL batch (hooked off
    {!Relational.Wal.set_on_append}, so DDL auto-commits are included) is
    enqueued under the engine lock and fanned out to connected replica
    sinks by {!Hub.flush} — which the server calls after releasing the
    lock, mirroring how client responses are fanned out.  A replica runs
    {!Replica.start}: a background thread that dials the primary with
    {!Backoff}, sends [RHELLO] carrying the last LSN it applied, and then
    consumes the primary's stream — snapshot chunks
    ({!Relational.Checkpoint} lines) when it is too far behind, WAL-record
    frames otherwise — acknowledging each applied batch with [RACK].

    Neither side depends on {!Server}: the hub sends through a callback
    (the server's non-blocking per-connection enqueue) and the replica
    applies through callbacks (the replica server wraps them in its engine
    write lock), so the module is testable over bare sockets.

    Delivery discipline: LSNs are dense (every commit-terminated batch
    increments by one), so the replica buffers completed batches and
    applies strictly in sequence — [applied + 1] or nothing.  Duplicates
    (the catch-up stream overlaps the live stream by design) and
    reorderings are absorbed by the buffer; a gap simply waits, and if the
    connection dies first the reconnect handshake re-ships the suffix. *)

open Relational

let log_src = Logs.Src.create "youtopia.repl" ~doc:"Youtopia replication"

module Log = (val Logs.src_log log_src : Logs.LOG)

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* ---------------- chunking ---------------- *)

(** Split [text] into [(last, piece)] chunks of at most
    {!Wire.repl_chunk_bytes}; always yields at least one chunk. *)
let chunks text =
  let n = String.length text in
  let budget = Wire.repl_chunk_bytes in
  if n = 0 then [ (true, "") ]
  else begin
    let out = ref [] in
    let off = ref 0 in
    while !off < n do
      let len = min budget (n - !off) in
      out := (!off + len >= n, String.sub text !off len) :: !out;
      off := !off + len
    done;
    List.rev !out
  end

let encode_batch records =
  String.concat "\n" (List.map Wal.encode_record records)

let decode_batch text =
  List.map Wal.decode_record (String.split_on_char '\n' text)

(** Wire frames for one committed batch, in send order. *)
let frames_of_batch ~lsn ~sent_at_us records =
  List.map
    (fun (last, piece) ->
      Wire.Wal_recs { lsn; sent_at_us; last; records = piece })
    (chunks (encode_batch records))

(** Wire frames for a checkpoint snapshot, in send order. *)
let frames_of_snapshot ~lsn lines =
  List.mapi
    (fun seq (last, piece) -> Wire.Snapshot_chunk { lsn; seq; last; data = piece })
    (chunks (String.concat "\n" lines))

(** Committed batches recorded in the WAL file past [after_lsn], as
    [(lsn, records)] oldest first.  Tolerates a concurrently appending
    writer: a torn tail parses as an incomplete batch and is dropped —
    the live stream covers it.  Used for replica catch-up. *)
let catchup_batches ~wal_path ~after_lsn =
  let base, records =
    match Wal.read_records wal_path with
    | Wal.Lsn_base n :: rest -> (n, rest)
    | records -> (0, records)
  in
  let out = ref [] in
  let lsn = ref base in
  let batch = ref [] in
  List.iter
    (fun r ->
      batch := r :: !batch;
      match r with
      | Wal.Commit _ ->
        incr lsn;
        if !lsn > after_lsn then out := (!lsn, List.rev !batch) :: !out;
        batch := []
      | _ -> ())
    records;
  List.rev !out

(* ---------------- primary: the hub ---------------- *)

module Hub = struct
  type sink = {
    sink_id : string;
    send : Wire.response -> unit;
        (** non-blocking enqueue; exceptions mark the sink dead *)
    mutable sent_lsn : int;
    mutable acked_lsn : int;
    mutable alive : bool;
  }

  type stats = {
    replicas : int;
    batches_shipped : int;
    records_shipped : int;
    last_shipped_lsn : int;
    min_acked_lsn : int;  (** 0 when no replica is connected *)
  }

  type t = {
    mu : Mutex.t;
    pending : (int * Wal.record list) Queue.t;
    mutable sinks : sink list;
    mutable batches_shipped : int;
    mutable records_shipped : int;
    mutable last_shipped_lsn : int;
  }

  let create () =
    {
      mu = Mutex.create ();
      pending = Queue.create ();
      sinks = [];
      batches_shipped = 0;
      records_shipped = 0;
      last_shipped_lsn = 0;
    }

  let with_mu t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (** Record a committed batch for shipping.  Called from the WAL's
      on-append hook — under the WAL lock, inside the committer's engine
      lock — so it only enqueues; {!flush} does the sending. *)
  let note t ~lsn records =
    with_mu t (fun () -> Queue.push (lsn, records) t.pending)

  (** Hook the hub into a WAL so every committed batch is noted. *)
  let attach t wal = Wal.set_on_append wal (Some (fun ~lsn recs -> note t ~lsn recs))

  let register t ~replica_id ~send =
    let sink =
      { sink_id = replica_id; send; sent_lsn = 0; acked_lsn = 0; alive = true }
    in
    with_mu t (fun () -> t.sinks <- sink :: t.sinks);
    sink

  let unregister t sink =
    sink.alive <- false;
    with_mu t (fun () -> t.sinks <- List.filter (fun s -> s != sink) t.sinks)

  let ack sink ~lsn = if lsn > sink.acked_lsn then sink.acked_lsn <- lsn

  (** Drain pending batches to every live sink, in commit order.  Runs
      under the hub lock for the whole drain so chunks of different
      batches never interleave on a connection; sends are non-blocking
      enqueues, so holding it is cheap.  Call after releasing the engine
      lock. *)
  let flush t =
    Fault.point "repl.hub.flush";
    with_mu t (fun () ->
        while not (Queue.is_empty t.pending) do
          let lsn, records = Queue.pop t.pending in
          (* [repl.hub.drop] loses this batch on the shipping path (never
             from the log): replicas must detect the LSN gap and recover
             via reconnect catch-up *)
          if Fault.skip "repl.hub.drop" then ()
          else if t.sinks <> [] then begin
            let frames = frames_of_batch ~lsn ~sent_at_us:(now_us ()) records in
            List.iter
              (fun sink ->
                if sink.alive then begin
                  try
                    List.iter sink.send frames;
                    if lsn > sink.sent_lsn then sink.sent_lsn <- lsn
                  with e ->
                    sink.alive <- false;
                    Log.warn (fun m ->
                        m "dropping replica sink %s: %s" sink.sink_id
                          (Printexc.to_string e))
                end)
              t.sinks;
            t.batches_shipped <- t.batches_shipped + 1;
            t.records_shipped <- t.records_shipped + List.length records;
            if lsn > t.last_shipped_lsn then t.last_shipped_lsn <- lsn
          end
        done)

  let stats t =
    with_mu t (fun () ->
        let live = List.filter (fun s -> s.alive) t.sinks in
        {
          replicas = List.length live;
          batches_shipped = t.batches_shipped;
          records_shipped = t.records_shipped;
          last_shipped_lsn = t.last_shipped_lsn;
          min_acked_lsn =
            (match live with
            | [] -> 0
            | _ -> List.fold_left (fun m s -> min m s.acked_lsn) max_int live);
        })

  let replicas t =
    with_mu t (fun () ->
        List.filter_map
          (fun s ->
            if s.alive then Some (s.sink_id, s.sent_lsn, s.acked_lsn) else None)
          t.sinks)
end

(* ---------------- replica: the upstream loop ---------------- *)

module Replica = struct
  type event =
    | Connected
    | Disconnected of string
    | Snapshot_loaded of { lsn : int }
    | Batch_applied of { lsn : int; lag_lsn : int; lag_ms : float }

  type callbacks = {
    load_snapshot : lsn:int -> Catalog.t -> unit;
        (** swap the replica's state to the snapshot; runs on the replica
            thread — wrap in the engine write lock *)
    apply_batch : lsn:int -> Wal.record list -> unit;
        (** apply one committed batch; same locking discipline *)
    notify : event -> unit;  (** stats / logging; must not raise *)
  }

  type counters = {
    mutable reconnects : int;
    mutable snapshots_loaded : int;
    mutable batches_applied : int;
    mutable last_lag_ms : float;
  }

  type t = {
    host : string;
    port : int;
    replica_id : string;
    policy : Backoff.policy;
    max_frame : int;
    cb : callbacks;
    mu : Mutex.t;
    mutable applied_lsn : int;
    mutable seen_lsn : int;
    mutable connected : bool;
    mutable stopping : bool;
    mutable session_ok : bool;
        (** the current/last session completed its handshake — resets the
            reconnect backoff *)
    mutable fd : Unix.file_descr option;
    counters : counters;
    mutable thread : Thread.t option;
  }

  let with_mu t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let applied_lsn t = t.applied_lsn
  let seen_lsn t = t.seen_lsn
  let connected t = t.connected

  let stats t =
    with_mu t (fun () ->
        ( t.counters.reconnects,
          t.counters.snapshots_loaded,
          t.counters.batches_applied,
          t.counters.last_lag_ms ))

  let dial t =
    let addr =
      match Unix.getaddrinfo t.host (string_of_int t.port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
      | ai :: _ -> ai.Unix.ai_addr
      | [] -> failwith (Printf.sprintf "cannot resolve %s:%d" t.host t.port)
    in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with e ->
       Unix.close fd;
       raise e);
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd

  (** One connection lifetime: handshake, then consume the stream until it
      breaks or [stop] shuts the socket down.  Completed batches are
      buffered and applied strictly in LSN sequence; while a snapshot is
      being streamed nothing is applied — the snapshot resets [applied]
      (possibly backwards, when the primary restarted with an older log)
      and the buffer drains on top of it. *)
  let session t =
    let fd = dial t in
    t.fd <- Some fd;
    let max_frame = t.max_frame in
    let send req = Wire.write_frame ~max_frame fd (Wire.encode_request req) in
    Fun.protect
      ~finally:(fun () ->
        t.fd <- None;
        t.connected <- false;
        try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        send
          (Wire.Replica_hello
             {
               version = Wire.protocol_version;
               replica_id = t.replica_id;
               last_lsn = t.applied_lsn;
             });
        (match Wire.decode_response_kind (Wire.read_frame_kind ~max_frame fd) with
        | Wire.Welcome _ -> ()
        | Wire.Error { message; _ } -> failwith ("primary rejected replica: " ^ message)
        | _ -> failwith "unexpected handshake response");
        t.connected <- true;
        t.session_ok <- true;
        t.cb.notify Connected;
        (* per-session reassembly state *)
        let snap : (int * Buffer.t) option ref = ref None in
        let partial : (int, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
        let completed : (int, Wal.record list * int) Hashtbl.t =
          Hashtbl.create 8
        in
        let drain () =
          if !snap = None then begin
            let continue = ref true in
            while !continue do
              match Hashtbl.find_opt completed (t.applied_lsn + 1) with
              | None -> continue := false
              | Some (records, sent_at_us) ->
                let lsn = t.applied_lsn + 1 in
                Hashtbl.remove completed lsn;
                (* raising here aborts the session before [applied_lsn]
                   advances; the reconnect re-requests from this batch *)
                Fault.point "repl.replica.apply";
                t.cb.apply_batch ~lsn records;
                t.applied_lsn <- lsn;
                let lag_lsn = max 0 (t.seen_lsn - lsn) in
                let lag_ms = float_of_int (now_us () - sent_at_us) /. 1e3 in
                with_mu t (fun () ->
                    t.counters.batches_applied <-
                      t.counters.batches_applied + 1;
                    t.counters.last_lag_ms <- lag_ms);
                t.cb.notify (Batch_applied { lsn; lag_lsn; lag_ms });
                send (Wire.Repl_ack { lsn })
            done;
            (* stale duplicates (catch-up overlapping the live stream) *)
            Hashtbl.iter
              (fun lsn _ -> if lsn <= t.applied_lsn then Hashtbl.remove completed lsn)
              (Hashtbl.copy completed)
          end
        in
        let rec loop () =
          (match Wire.decode_response_kind (Wire.read_frame_kind ~max_frame fd) with
          | Wire.Snapshot_chunk { lsn; seq = _; last; data } ->
            let buf =
              match !snap with
              | Some (l, buf) when l = lsn -> buf
              | _ ->
                let buf = Buffer.create 4096 in
                snap := Some (lsn, buf);
                buf
            in
            Buffer.add_string buf data;
            if last then begin
              let lines = String.split_on_char '\n' (Buffer.contents buf) in
              let snap_lsn, catalog = Checkpoint.of_lines lines in
              snap := None;
              t.cb.load_snapshot ~lsn:snap_lsn catalog;
              t.applied_lsn <- snap_lsn;
              if snap_lsn > t.seen_lsn then t.seen_lsn <- snap_lsn;
              with_mu t (fun () ->
                  t.counters.snapshots_loaded <- t.counters.snapshots_loaded + 1);
              t.cb.notify (Snapshot_loaded { lsn = snap_lsn });
              drain ()
            end
          | Wire.Wal_recs { lsn; sent_at_us; last; records } ->
            if lsn > t.seen_lsn then t.seen_lsn <- lsn;
            let buf =
              match Hashtbl.find_opt partial lsn with
              | Some buf -> buf
              | None ->
                let buf = Buffer.create 256 in
                Hashtbl.replace partial lsn buf;
                buf
            in
            Buffer.add_string buf records;
            if last then begin
              let text = Buffer.contents buf in
              Hashtbl.remove partial lsn;
              Hashtbl.replace completed lsn (decode_batch text, sent_at_us);
              drain ()
            end
          | Wire.Error { message; _ } -> failwith ("primary error: " ^ message)
          | Wire.Welcome _ | Wire.Result _ | Wire.Pong _ | Wire.Stats _
          | Wire.Push _ ->
            ());
          loop ()
        in
        loop ())

  let run t =
    let attempt = ref 0 in
    while not t.stopping do
      (try
         session t (* returns only by exception *)
       with e ->
         if not t.stopping then begin
           with_mu t (fun () ->
               t.counters.reconnects <- t.counters.reconnects + 1);
           t.cb.notify (Disconnected (Printexc.to_string e));
           Log.info (fun m ->
               m "replica %s: upstream %s:%d lost (%s); reconnecting"
                 t.replica_id t.host t.port (Printexc.to_string e))
         end);
      if not t.stopping then begin
        incr attempt;
        if t.session_ok then attempt := 1;
        t.session_ok <- false;
        let delay =
          Backoff.jittered t.policy ~attempt:(min !attempt t.policy.attempts)
        in
        if delay > 0. then Thread.delay delay
      end
    done

  let start ~host ~port ?(replica_id = "replica") ?(policy = Backoff.default)
      ?(max_frame = Wire.default_max_frame) cb =
    let t =
      {
        host;
        port;
        replica_id;
        policy;
        max_frame;
        cb;
        mu = Mutex.create ();
        applied_lsn = 0;
        seen_lsn = 0;
        connected = false;
        stopping = false;
        session_ok = false;
        fd = None;
        counters =
          {
            reconnects = 0;
            snapshots_loaded = 0;
            batches_applied = 0;
            last_lag_ms = 0.;
          };
        thread = None;
      }
    in
    t.thread <- Some (Thread.create run t);
    t

  let stop t =
    t.stopping <- true;
    (match t.fd with
    | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    match t.thread with None -> () | Some th -> Thread.join th
end
