(** Server-side counters: connections, frames, bytes, submissions, pushes,
    and server-side submit handling latency.  All counters are guarded by
    one mutex — they are touched by every reader/writer thread. *)

type t = {
  mu : Mutex.t;
  mutable connections_total : int;
  mutable connections_active : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable submits : int;
  mutable pushes : int;
  mutable errors : int;
  mutable submit_latency_total : float;
  mutable submit_latency_max : float;
  mutable engine_reads : int;
  mutable engine_writes : int;
  mutable engine_read_waits : int;
  mutable engine_write_waits : int;
}

(** Immutable copy for rendering/reporting. *)
type snapshot = {
  connections_total : int;
  connections_active : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  submits : int;
  pushes : int;
  errors : int;
  submit_latency_mean : float;  (** seconds; 0 if no submits *)
  submit_latency_max : float;
  engine_reads : int;  (** engine read-lock (shared) acquisitions *)
  engine_writes : int;  (** engine write-lock (exclusive) acquisitions *)
  engine_read_waits : int;  (** read acquisitions that had to queue *)
  engine_write_waits : int;  (** write acquisitions that had to queue *)
}

let create () =
  {
    mu = Mutex.create ();
    connections_total = 0;
    connections_active = 0;
    frames_in = 0;
    frames_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    submits = 0;
    pushes = 0;
    errors = 0;
    submit_latency_total = 0.;
    submit_latency_max = 0.;
    engine_reads = 0;
    engine_writes = 0;
    engine_read_waits = 0;
    engine_write_waits = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let on_connect t =
  locked t (fun () ->
      t.connections_total <- t.connections_total + 1;
      t.connections_active <- t.connections_active + 1)

let on_disconnect t =
  locked t (fun () -> t.connections_active <- t.connections_active - 1)

let on_frame_in t ~bytes =
  locked t (fun () ->
      t.frames_in <- t.frames_in + 1;
      t.bytes_in <- t.bytes_in + bytes)

let on_frame_out t ~bytes =
  locked t (fun () ->
      t.frames_out <- t.frames_out + 1;
      t.bytes_out <- t.bytes_out + bytes)

let on_submit t ~latency =
  locked t (fun () ->
      t.submits <- t.submits + 1;
      t.submit_latency_total <- t.submit_latency_total +. latency;
      t.submit_latency_max <- Float.max t.submit_latency_max latency)

let on_push t = locked t (fun () -> t.pushes <- t.pushes + 1)
let on_error t = locked t (fun () -> t.errors <- t.errors + 1)

let on_engine_read t ~waited =
  locked t (fun () ->
      t.engine_reads <- t.engine_reads + 1;
      if waited then t.engine_read_waits <- t.engine_read_waits + 1)

let on_engine_write t ~waited =
  locked t (fun () ->
      t.engine_writes <- t.engine_writes + 1;
      if waited then t.engine_write_waits <- t.engine_write_waits + 1)

let snapshot t : snapshot =
  locked t (fun () ->
      {
        connections_total = t.connections_total;
        connections_active = t.connections_active;
        frames_in = t.frames_in;
        frames_out = t.frames_out;
        bytes_in = t.bytes_in;
        bytes_out = t.bytes_out;
        submits = t.submits;
        pushes = t.pushes;
        errors = t.errors;
        submit_latency_mean =
          (if t.submits = 0 then 0.
           else t.submit_latency_total /. float_of_int t.submits);
        submit_latency_max = t.submit_latency_max;
        engine_reads = t.engine_reads;
        engine_writes = t.engine_writes;
        engine_read_waits = t.engine_read_waits;
        engine_write_waits = t.engine_write_waits;
      })

(** One key=value per line — the payload of the [ADMIN|…|server] probe. *)
let render t =
  let s = snapshot t in
  String.concat "\n"
    [
      Printf.sprintf "connections_total=%d" s.connections_total;
      Printf.sprintf "connections_active=%d" s.connections_active;
      Printf.sprintf "frames_in=%d" s.frames_in;
      Printf.sprintf "frames_out=%d" s.frames_out;
      Printf.sprintf "bytes_in=%d" s.bytes_in;
      Printf.sprintf "bytes_out=%d" s.bytes_out;
      Printf.sprintf "submits=%d" s.submits;
      Printf.sprintf "pushes=%d" s.pushes;
      Printf.sprintf "errors=%d" s.errors;
      Printf.sprintf "submit_latency_mean_us=%.1f" (s.submit_latency_mean *. 1e6);
      Printf.sprintf "submit_latency_max_us=%.1f" (s.submit_latency_max *. 1e6);
      Printf.sprintf "engine_reads=%d" s.engine_reads;
      Printf.sprintf "engine_writes=%d" s.engine_writes;
      Printf.sprintf "engine_read_waits=%d" s.engine_read_waits;
      Printf.sprintf "engine_write_waits=%d" s.engine_write_waits;
    ]
