(** Server-side counters: connections, frames, bytes, submissions, pushes,
    server-side submit handling latency, and the write-batching pipeline
    (batch sizes, WAL flush/fsync amortisation, latency histogram).  All
    counters are guarded by one mutex — they are touched by every
    reader/writer/drainer thread. *)

(* Submit-latency histogram: log-spaced upper bounds in µs; one extra
   overflow bucket at the end.  p50/p99 are estimated as the upper bound of
   the bucket where the cumulative count crosses the percentile (the
   overflow bucket reports the observed max). *)
let latency_bounds_us =
  [| 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000.; 20_000.; 50_000.; 100_000. |]

let latency_buckets = Array.length latency_bounds_us + 1

(* Batch-size histogram: power-of-two upper bounds; overflow bucket last. *)
let batch_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128 |]
let batch_buckets = Array.length batch_bounds + 1

let bucket_of_latency_us us =
  let rec find i =
    if i >= Array.length latency_bounds_us then Array.length latency_bounds_us
    else if us <= latency_bounds_us.(i) then i
    else find (i + 1)
  in
  find 0

let bucket_of_batch n =
  let rec find i =
    if i >= Array.length batch_bounds then Array.length batch_bounds
    else if n <= batch_bounds.(i) then i
    else find (i + 1)
  in
  find 0

type t = {
  mu : Mutex.t;
  mutable connections_total : int;
  mutable connections_active : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable submits : int;
  mutable pushes : int;
  mutable errors : int;
  mutable submit_latency_total : float;
  mutable submit_latency_max : float;
  submit_latency_hist : int array;  (** [latency_buckets] log buckets *)
  mutable engine_reads : int;
  mutable engine_writes : int;
  mutable engine_read_waits : int;
  mutable engine_write_waits : int;
  (* write-batching pipeline *)
  mutable batches : int;  (** batches the drainer executed *)
  mutable batched_requests : int;  (** write requests inside those batches *)
  mutable batch_size_max : int;
  batch_size_hist : int array;  (** [batch_buckets] buckets *)
  mutable wal_flushes : int;  (** WAL channel flushes across batches *)
  mutable wal_fsyncs : int;  (** WAL fsyncs across batches *)
  (* replication: primary side *)
  mutable replicas_active : int;
  mutable replicas_total : int;
  mutable repl_batches_shipped : int;
  mutable repl_records_shipped : int;
  mutable repl_last_shipped_lsn : int;
  mutable repl_acked_lsn : int;  (** min acked across live replicas *)
  (* replication: replica side *)
  mutable repl_upstream_connected : bool;
  mutable repl_applied_lsn : int;
  mutable repl_seen_lsn : int;
  mutable repl_lag_lsn : int;  (** last observed apply lag in batches *)
  mutable repl_lag_ms : float;  (** last observed commit-to-apply ms *)
  mutable repl_snapshots_loaded : int;
  mutable repl_reconnects : int;
  mutable readonly_rejections : int;
      (** writes a read-only replica redirected to the primary *)
  (* event-loop core *)
  mutable loops : int;  (** event loops running (0 = thread model) *)
  mutable loop_iterations : int;  (** poll/select wait cycles across loops *)
  mutable loop_wakeups : int;  (** self-pipe wakeups drained *)
  mutable loop_fds_max : int;  (** most fds one loop has multiplexed *)
  mutable loop_adopt_backlog_max : int;
      (** deepest incoming-connection queue observed at adoption *)
  mutable raw_frames_out : int;  (** frames sent on the raw-bytes path *)
  mutable idle_timeouts : int;  (** connections torn down by idle sweep *)
  mutable conns_refused : int;  (** accepts refused at [max_conns] *)
}

(** Immutable copy for rendering/reporting. *)
type snapshot = {
  connections_total : int;
  connections_active : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  submits : int;
  pushes : int;
  errors : int;
  submit_latency_mean : float;  (** seconds; 0 if no submits *)
  submit_latency_max : float;
  submit_latency_p50 : float;  (** seconds, histogram upper-bound estimate *)
  submit_latency_p99 : float;  (** seconds, histogram upper-bound estimate *)
  submit_latency_hist : int array;
  engine_reads : int;  (** engine read-lock (shared) acquisitions *)
  engine_writes : int;  (** engine write-lock (exclusive) acquisitions *)
  engine_read_waits : int;  (** read acquisitions that had to queue *)
  engine_write_waits : int;  (** write acquisitions that had to queue *)
  batches : int;  (** write batches the drainer executed *)
  batched_requests : int;  (** write requests executed inside batches *)
  batch_size_mean : float;  (** 0 if no batches *)
  batch_size_max : int;
  batch_size_hist : int array;
  wal_flushes : int;  (** WAL flushes attributed to batches *)
  wal_fsyncs : int;  (** WAL fsyncs attributed to batches *)
  replicas_active : int;
  replicas_total : int;
  repl_batches_shipped : int;
  repl_records_shipped : int;
  repl_last_shipped_lsn : int;
  repl_acked_lsn : int;
  repl_upstream_connected : bool;
  repl_applied_lsn : int;
  repl_seen_lsn : int;
  repl_lag_lsn : int;
  repl_lag_ms : float;
  repl_snapshots_loaded : int;
  repl_reconnects : int;
  readonly_rejections : int;
  loops : int;
  loop_iterations : int;
  loop_wakeups : int;
  loop_fds_max : int;
  loop_adopt_backlog_max : int;
  raw_frames_out : int;
  idle_timeouts : int;
  conns_refused : int;
}

let create () =
  {
    mu = Mutex.create ();
    connections_total = 0;
    connections_active = 0;
    frames_in = 0;
    frames_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    submits = 0;
    pushes = 0;
    errors = 0;
    submit_latency_total = 0.;
    submit_latency_max = 0.;
    submit_latency_hist = Array.make latency_buckets 0;
    engine_reads = 0;
    engine_writes = 0;
    engine_read_waits = 0;
    engine_write_waits = 0;
    batches = 0;
    batched_requests = 0;
    batch_size_max = 0;
    batch_size_hist = Array.make batch_buckets 0;
    wal_flushes = 0;
    wal_fsyncs = 0;
    replicas_active = 0;
    replicas_total = 0;
    repl_batches_shipped = 0;
    repl_records_shipped = 0;
    repl_last_shipped_lsn = 0;
    repl_acked_lsn = 0;
    repl_upstream_connected = false;
    repl_applied_lsn = 0;
    repl_seen_lsn = 0;
    repl_lag_lsn = 0;
    repl_lag_ms = 0.;
    repl_snapshots_loaded = 0;
    repl_reconnects = 0;
    readonly_rejections = 0;
    loops = 0;
    loop_iterations = 0;
    loop_wakeups = 0;
    loop_fds_max = 0;
    loop_adopt_backlog_max = 0;
    raw_frames_out = 0;
    idle_timeouts = 0;
    conns_refused = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let on_connect t =
  locked t (fun () ->
      t.connections_total <- t.connections_total + 1;
      t.connections_active <- t.connections_active + 1)

let on_disconnect t =
  locked t (fun () -> t.connections_active <- t.connections_active - 1)

let on_frame_in t ~bytes =
  locked t (fun () ->
      t.frames_in <- t.frames_in + 1;
      t.bytes_in <- t.bytes_in + bytes)

let on_frame_out t ~bytes =
  locked t (fun () ->
      t.frames_out <- t.frames_out + 1;
      t.bytes_out <- t.bytes_out + bytes)

let on_submit t ~latency =
  locked t (fun () ->
      t.submits <- t.submits + 1;
      t.submit_latency_total <- t.submit_latency_total +. latency;
      t.submit_latency_max <- Float.max t.submit_latency_max latency;
      let b = bucket_of_latency_us (latency *. 1e6) in
      t.submit_latency_hist.(b) <- t.submit_latency_hist.(b) + 1)

let on_push t = locked t (fun () -> t.pushes <- t.pushes + 1)
let on_error t = locked t (fun () -> t.errors <- t.errors + 1)

let on_engine_read t ~waited =
  locked t (fun () ->
      t.engine_reads <- t.engine_reads + 1;
      if waited then t.engine_read_waits <- t.engine_read_waits + 1)

let on_engine_write t ~waited =
  locked t (fun () ->
      t.engine_writes <- t.engine_writes + 1;
      if waited then t.engine_write_waits <- t.engine_write_waits + 1)

(** One drained write batch of [size] requests; [flushes]/[fsyncs] are the
    WAL io deltas the batch caused (one flush + at most one fsync when the
    pipeline amortises correctly). *)
let on_batch t ~size ~flushes ~fsyncs =
  locked t (fun () ->
      t.batches <- t.batches + 1;
      t.batched_requests <- t.batched_requests + size;
      t.batch_size_max <- max t.batch_size_max size;
      let b = bucket_of_batch size in
      t.batch_size_hist.(b) <- t.batch_size_hist.(b) + 1;
      t.wal_flushes <- t.wal_flushes + flushes;
      t.wal_fsyncs <- t.wal_fsyncs + fsyncs)

(* -- replication -- *)

let on_replica_connect t =
  locked t (fun () ->
      t.replicas_total <- t.replicas_total + 1;
      t.replicas_active <- t.replicas_active + 1)

let on_replica_disconnect t =
  locked t (fun () -> t.replicas_active <- max 0 (t.replicas_active - 1))

(** Primary: mirror the hub's shipping gauges after a flush. *)
let set_repl_shipping t ~batches ~records ~last_lsn ~acked_lsn =
  locked t (fun () ->
      t.repl_batches_shipped <- batches;
      t.repl_records_shipped <- records;
      t.repl_last_shipped_lsn <- last_lsn;
      t.repl_acked_lsn <- acked_lsn)

let set_repl_upstream t connected =
  locked t (fun () -> t.repl_upstream_connected <- connected)

(** Replica: one batch applied at [lsn], currently [lag_lsn] batches and
    [lag_ms] milliseconds behind the primary's send time. *)
let on_repl_apply t ~lsn ~seen ~lag_lsn ~lag_ms =
  locked t (fun () ->
      t.repl_applied_lsn <- lsn;
      t.repl_seen_lsn <- max t.repl_seen_lsn seen;
      t.repl_lag_lsn <- lag_lsn;
      t.repl_lag_ms <- lag_ms)

let on_repl_snapshot t ~lsn =
  locked t (fun () ->
      t.repl_snapshots_loaded <- t.repl_snapshots_loaded + 1;
      t.repl_applied_lsn <- lsn;
      t.repl_seen_lsn <- max t.repl_seen_lsn lsn)

let on_repl_reconnect t =
  locked t (fun () -> t.repl_reconnects <- t.repl_reconnects + 1)

let on_readonly_rejected t =
  locked t (fun () -> t.readonly_rejections <- t.readonly_rejections + 1)

(* -- event-loop core -- *)

let set_loops t n = locked t (fun () -> t.loops <- n)

(** One wait cycle of loop [_loop] currently multiplexing [fds] fds
    (including its wakeup pipe). *)
let on_loop_iteration t ~fds =
  locked t (fun () ->
      t.loop_iterations <- t.loop_iterations + 1;
      t.loop_fds_max <- max t.loop_fds_max fds)

let on_loop_wakeup t = locked t (fun () -> t.loop_wakeups <- t.loop_wakeups + 1)

let on_loop_adopt t ~backlog =
  locked t (fun () ->
      t.loop_adopt_backlog_max <- max t.loop_adopt_backlog_max backlog)

let on_raw_frame_out t =
  locked t (fun () -> t.raw_frames_out <- t.raw_frames_out + 1)

let on_idle_timeout t =
  locked t (fun () -> t.idle_timeouts <- t.idle_timeouts + 1)

let on_conn_refused t =
  locked t (fun () -> t.conns_refused <- t.conns_refused + 1)

(* percentile from the log histogram: upper bound of the bucket where the
   cumulative count crosses p; the overflow bucket reports [max_s] *)
let hist_percentile hist ~total ~max_s p =
  if total = 0 then 0.
  else begin
    let target = int_of_float (ceil (p *. float_of_int total)) in
    let target = max 1 target in
    let rec walk i cum =
      if i >= Array.length hist then max_s
      else
        let cum = cum + hist.(i) in
        if cum >= target then
          if i < Array.length latency_bounds_us then latency_bounds_us.(i) /. 1e6
          else max_s
        else walk (i + 1) cum
    in
    walk 0 0
  end

let snapshot t : snapshot =
  locked t (fun () ->
      {
        connections_total = t.connections_total;
        connections_active = t.connections_active;
        frames_in = t.frames_in;
        frames_out = t.frames_out;
        bytes_in = t.bytes_in;
        bytes_out = t.bytes_out;
        submits = t.submits;
        pushes = t.pushes;
        errors = t.errors;
        submit_latency_mean =
          (if t.submits = 0 then 0.
           else t.submit_latency_total /. float_of_int t.submits);
        submit_latency_max = t.submit_latency_max;
        submit_latency_p50 =
          hist_percentile t.submit_latency_hist ~total:t.submits
            ~max_s:t.submit_latency_max 0.50;
        submit_latency_p99 =
          hist_percentile t.submit_latency_hist ~total:t.submits
            ~max_s:t.submit_latency_max 0.99;
        submit_latency_hist = Array.copy t.submit_latency_hist;
        engine_reads = t.engine_reads;
        engine_writes = t.engine_writes;
        engine_read_waits = t.engine_read_waits;
        engine_write_waits = t.engine_write_waits;
        batches = t.batches;
        batched_requests = t.batched_requests;
        batch_size_mean =
          (if t.batches = 0 then 0.
           else float_of_int t.batched_requests /. float_of_int t.batches);
        batch_size_max = t.batch_size_max;
        batch_size_hist = Array.copy t.batch_size_hist;
        wal_flushes = t.wal_flushes;
        wal_fsyncs = t.wal_fsyncs;
        replicas_active = t.replicas_active;
        replicas_total = t.replicas_total;
        repl_batches_shipped = t.repl_batches_shipped;
        repl_records_shipped = t.repl_records_shipped;
        repl_last_shipped_lsn = t.repl_last_shipped_lsn;
        repl_acked_lsn = t.repl_acked_lsn;
        repl_upstream_connected = t.repl_upstream_connected;
        repl_applied_lsn = t.repl_applied_lsn;
        repl_seen_lsn = t.repl_seen_lsn;
        repl_lag_lsn = t.repl_lag_lsn;
        repl_lag_ms = t.repl_lag_ms;
        repl_snapshots_loaded = t.repl_snapshots_loaded;
        repl_reconnects = t.repl_reconnects;
        readonly_rejections = t.readonly_rejections;
        loops = t.loops;
        loop_iterations = t.loop_iterations;
        loop_wakeups = t.loop_wakeups;
        loop_fds_max = t.loop_fds_max;
        loop_adopt_backlog_max = t.loop_adopt_backlog_max;
        raw_frames_out = t.raw_frames_out;
        idle_timeouts = t.idle_timeouts;
        conns_refused = t.conns_refused;
      })

(* "≤bound:count" pairs for the non-empty buckets, e.g. "le8:3,le16:12" *)
let hist_to_string ~bounds hist =
  let parts = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let label =
          if i < Array.length bounds then Printf.sprintf "le%s" bounds.(i)
          else "inf"
        in
        parts := Printf.sprintf "%s:%d" label c :: !parts
      end)
    hist;
  String.concat "," (List.rev !parts)

let latency_bound_labels =
  Array.map (fun b -> Printf.sprintf "%.0f" b) latency_bounds_us

let batch_bound_labels = Array.map string_of_int batch_bounds

(** One key=value per line — the payload of the [ADMIN|…|server] probe. *)
let render t =
  let s = snapshot t in
  String.concat "\n"
    [
      Printf.sprintf "connections_total=%d" s.connections_total;
      Printf.sprintf "connections_active=%d" s.connections_active;
      Printf.sprintf "frames_in=%d" s.frames_in;
      Printf.sprintf "frames_out=%d" s.frames_out;
      Printf.sprintf "bytes_in=%d" s.bytes_in;
      Printf.sprintf "bytes_out=%d" s.bytes_out;
      Printf.sprintf "submits=%d" s.submits;
      Printf.sprintf "pushes=%d" s.pushes;
      Printf.sprintf "errors=%d" s.errors;
      Printf.sprintf "submit_latency_mean_us=%.1f" (s.submit_latency_mean *. 1e6);
      Printf.sprintf "submit_latency_max_us=%.1f" (s.submit_latency_max *. 1e6);
      Printf.sprintf "submit_latency_p50_us=%.1f" (s.submit_latency_p50 *. 1e6);
      Printf.sprintf "submit_latency_p99_us=%.1f" (s.submit_latency_p99 *. 1e6);
      Printf.sprintf "submit_latency_hist_us=%s"
        (hist_to_string ~bounds:latency_bound_labels s.submit_latency_hist);
      Printf.sprintf "engine_reads=%d" s.engine_reads;
      Printf.sprintf "engine_writes=%d" s.engine_writes;
      Printf.sprintf "engine_read_waits=%d" s.engine_read_waits;
      Printf.sprintf "engine_write_waits=%d" s.engine_write_waits;
      Printf.sprintf "batches=%d" s.batches;
      Printf.sprintf "batched_requests=%d" s.batched_requests;
      Printf.sprintf "batch_size_mean=%.2f" s.batch_size_mean;
      Printf.sprintf "batch_size_max=%d" s.batch_size_max;
      Printf.sprintf "batch_size_hist=%s"
        (hist_to_string ~bounds:batch_bound_labels s.batch_size_hist);
      Printf.sprintf "wal_flushes=%d" s.wal_flushes;
      Printf.sprintf "wal_fsyncs=%d" s.wal_fsyncs;
      Printf.sprintf "replicas_active=%d" s.replicas_active;
      Printf.sprintf "replicas_total=%d" s.replicas_total;
      Printf.sprintf "repl_batches_shipped=%d" s.repl_batches_shipped;
      Printf.sprintf "repl_records_shipped=%d" s.repl_records_shipped;
      Printf.sprintf "repl_last_shipped_lsn=%d" s.repl_last_shipped_lsn;
      Printf.sprintf "repl_acked_lsn=%d" s.repl_acked_lsn;
      Printf.sprintf "repl_upstream_connected=%b" s.repl_upstream_connected;
      Printf.sprintf "repl_applied_lsn=%d" s.repl_applied_lsn;
      Printf.sprintf "repl_seen_lsn=%d" s.repl_seen_lsn;
      Printf.sprintf "repl_lag_lsn=%d" s.repl_lag_lsn;
      Printf.sprintf "repl_lag_ms=%.3f" s.repl_lag_ms;
      Printf.sprintf "repl_snapshots_loaded=%d" s.repl_snapshots_loaded;
      Printf.sprintf "repl_reconnects=%d" s.repl_reconnects;
      Printf.sprintf "readonly_rejections=%d" s.readonly_rejections;
      Printf.sprintf "loops=%d" s.loops;
      Printf.sprintf "loop_iterations=%d" s.loop_iterations;
      Printf.sprintf "loop_wakeups=%d" s.loop_wakeups;
      Printf.sprintf "loop_fds_max=%d" s.loop_fds_max;
      Printf.sprintf "loop_adopt_backlog_max=%d" s.loop_adopt_backlog_max;
      Printf.sprintf "raw_frames_out=%d" s.raw_frames_out;
      Printf.sprintf "idle_timeouts=%d" s.idle_timeouts;
      Printf.sprintf "conns_refused=%d" s.conns_refused;
    ]
