(** Workload generation for the "loaded system" demonstration (Section 3 of
    the paper) and for the benchmark sweeps. *)

open Relational

val pair_sql : user:string -> friend:string -> dest:string -> string
(** The canonical pairwise flight coordination query as SQL text (what a
    front-end submits over the wire). *)

val pair_query :
  Catalog.t -> user:string -> friend:string -> dest:string -> Core.Equery.t
(** The same query compiled (no side effects; pure coordination load). *)

val group_queries :
  Catalog.t -> members:string list -> dest:string -> Core.Equery.t list
(** Clique coordination: every member requires every other member on the
    same flight. *)

val noise_queries : Catalog.t -> n:int -> dests:string array -> Core.Equery.t list
(** Queries that can never match (each waits for a ghost partner who never
    submits) — they only load the pending store. *)

val pair_arrivals :
  seed:int -> n:int -> dests:string array -> (string * string * string) list
(** [n] pairs of symmetric requests, interleaved (all first halves, then
    all second halves, both shuffled) so the pending store grows to [n]
    before matches begin. *)

type metrics = {
  submitted : int;
  fulfilled : int;  (** queries answered *)
  still_pending : int;
  elapsed : float;  (** seconds *)
  mean_arrival_latency : float;
  max_arrival_latency : float;
}

val run_pairs :
  Core.Coordinator.t -> Catalog.t -> (string * string * string) list -> metrics
(** Submit every arrival, timing each submission. *)

val pp_metrics : Format.formatter -> metrics -> unit
