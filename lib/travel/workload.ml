(** Workload generation for the "loaded system" demonstration (Section 3 of
    the paper: "a large number of entangled queries … trying to coordinate
    simultaneously") and for the benchmark sweeps. *)

(** [pair_sql ~user ~friend ~dest] — the canonical pairwise flight
    coordination query as SQL text (what a front-end submits over the
    wire). *)
let pair_sql ~user ~friend ~dest =
  Printf.sprintf
    "SELECT %s, fno INTO ANSWER FlightRes WHERE fno IN (SELECT fno FROM \
     Flights WHERE dest = '%s') AND (%s, fno) IN ANSWER FlightRes CHOOSE 1"
    ("'" ^ user ^ "'") dest
    ("'" ^ friend ^ "'")

(** [pair_query cat ~user ~friend ~dest] — the same query compiled (no side
    effects; pure coordination load). *)
let pair_query cat ~user ~friend ~dest =
  Core.Translate.of_sql cat ~owner:user (pair_sql ~user ~friend ~dest)

(** [group_queries cat ~members ~dest] — clique coordination: every member
    requires every other member on the same flight. *)
let group_queries cat ~members ~dest =
  List.map
    (fun user ->
      let friends = List.filter (fun f -> f <> user) members in
      let constraints =
        List.map
          (fun f -> Printf.sprintf "('%s', fno) IN ANSWER FlightRes" f)
          friends
      in
      Core.Translate.of_sql cat ~owner:user
        (Printf.sprintf
           "SELECT '%s', fno INTO ANSWER FlightRes WHERE fno IN (SELECT fno \
            FROM Flights WHERE dest = '%s') AND %s CHOOSE 1"
           user dest
           (String.concat " AND " constraints)))
    members

(** [noise_queries cat ~n ~dests] — queries that can never match: each waits
    for a ghost partner who never submits.  They only load the pending
    store, which is exactly what the scalability sweep needs. *)
let noise_queries cat ~n ~dests =
  List.init n (fun i ->
      let dest = dests.(i mod Array.length dests) in
      pair_query cat
        ~user:(Printf.sprintf "noise%d" i)
        ~friend:(Printf.sprintf "ghost%d" i)
        ~dest)

(** [pair_arrivals ~seed ~n ~dests] — [n] pairs of symmetric requests.  The
    returned list interleaves all first requests, then all second requests
    (shuffled), so the pending store grows to [n] before matches begin —
    the "multiple simultaneous bookings" scenario at scale. *)
let pair_arrivals ~seed ~n ~dests =
  let rng = Random.State.make [| seed |] in
  let firsts, seconds =
    List.init n (fun i ->
        let dest = dests.(Random.State.int rng (Array.length dests)) in
        let a = Printf.sprintf "pairA%d" i in
        let b = Printf.sprintf "pairB%d" i in
        (a, b, dest), (b, a, dest))
    |> List.split
  in
  let shuffle l =
    l
    |> List.map (fun x -> Random.State.bits rng, x)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  shuffle firsts @ shuffle seconds

type metrics = {
  submitted : int;
  fulfilled : int;  (** queries answered *)
  still_pending : int;
  elapsed : float;  (** seconds *)
  mean_arrival_latency : float;  (** mean seconds per submit call *)
  max_arrival_latency : float;
}

(** [run_pairs coordinator cat arrivals] — submit every arrival, timing each
    submission (the arrival-triggered match attempt dominates). *)
let run_pairs coordinator cat arrivals : metrics =
  let t0 = Unix.gettimeofday () in
  let latencies = ref [] in
  let fulfilled = ref 0 in
  List.iter
    (fun (user, friend, dest) ->
      let q = pair_query cat ~user ~friend ~dest in
      let s = Unix.gettimeofday () in
      (match Core.Coordinator.submit coordinator q with
      | Core.Coordinator.Answered _ -> fulfilled := !fulfilled + 2
      | Core.Coordinator.Registered _ | Core.Coordinator.Rejected _
      | Core.Coordinator.Multi _ -> ());
      latencies := (Unix.gettimeofday () -. s) :: !latencies)
    arrivals;
  let elapsed = Unix.gettimeofday () -. t0 in
  let n = List.length arrivals in
  {
    submitted = n;
    fulfilled = !fulfilled;
    still_pending = Core.Pending.size (Core.Coordinator.pending coordinator);
    elapsed;
    mean_arrival_latency =
      (if n = 0 then 0. else List.fold_left ( +. ) 0. !latencies /. float_of_int n);
    max_arrival_latency = List.fold_left max 0. !latencies;
  }

let pp_metrics ppf m =
  Fmt.pf ppf
    "submitted=%d fulfilled=%d pending=%d elapsed=%.3fs mean_lat=%.6fs \
     max_lat=%.6fs"
    m.submitted m.fulfilled m.still_pending m.elapsed m.mean_arrival_latency
    m.max_arrival_latency
