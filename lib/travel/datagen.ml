(** Schema and synthetic data for the travel web site.

    Substitutes for the authors' demo dataset (flights, hotels, seats) with
    a deterministic generator; the schema is what the demo scenarios need:
    flight/hotel search with date and price constraints, per-flight seat
    maps for the adjacent-seat request, and capacity columns so that
    bookings contend. *)

open Relational

let cities =
  [| "Paris"; "Rome"; "London"; "Berlin"; "Madrid"; "Athens"; "Oslo"; "Vienna" |]

(** Regular tables. *)
let flights_schema =
  Schema.make ~primary_key:[ 0 ] "Flights"
    [
      Schema.column "fno" Ctype.TInt;
      Schema.column "orig" Ctype.TText;
      Schema.column "dest" Ctype.TText;
      Schema.column "day" Ctype.TInt;
      Schema.column "price" Ctype.TFloat;
      Schema.column "seats" Ctype.TInt;
    ]

let hotels_schema =
  Schema.make ~primary_key:[ 0 ] "Hotels"
    [
      Schema.column "hid" Ctype.TInt;
      Schema.column "city" Ctype.TText;
      Schema.column "day" Ctype.TInt;
      Schema.column "price" Ctype.TFloat;
      Schema.column "rooms" Ctype.TInt;
    ]

let seats_schema =
  Schema.make ~primary_key:[ 0; 1 ] "Seats"
    [
      Schema.column "fno" Ctype.TInt;
      Schema.column "seat" Ctype.TInt;
      Schema.column "taken" Ctype.TInt;
    ]

let flight_bookings_schema =
  Schema.make "FlightBookings"
    [ Schema.column "who" Ctype.TText; Schema.column "fno" Ctype.TInt ]

let hotel_bookings_schema =
  Schema.make "HotelBookings"
    [ Schema.column "who" Ctype.TText; Schema.column "hid" Ctype.TInt ]

(** Answer relations. *)
let flight_res_schema =
  Schema.make "FlightRes"
    [ Schema.column "name" Ctype.TText; Schema.column "fno" Ctype.TInt ]

let hotel_res_schema =
  Schema.make "HotelRes"
    [ Schema.column "name" Ctype.TText; Schema.column "hid" Ctype.TInt ]

let seat_res_schema =
  Schema.make "SeatRes"
    [
      Schema.column "name" Ctype.TText;
      Schema.column "fno" Ctype.TInt;
      Schema.column "seat" Ctype.TInt;
    ]

(** [setup sys] creates all tables, answer relations, and the secondary
    indexes the workload needs. *)
let setup (sys : Youtopia.System.t) =
  let db = Youtopia.System.database sys in
  let flights = Database.create_table db flights_schema in
  let hotels = Database.create_table db hotels_schema in
  ignore (Database.create_table db seats_schema);
  ignore (Database.create_table db flight_bookings_schema);
  ignore (Database.create_table db hotel_bookings_schema);
  ignore (Table.create_index flights "flights_by_dest" [| 2 |]);
  ignore (Table.create_index hotels "hotels_by_city" [| 1 |]);
  Youtopia.System.declare_answer_relation sys flight_res_schema;
  Youtopia.System.declare_answer_relation sys hotel_res_schema;
  Youtopia.System.declare_answer_relation sys seat_res_schema

(** [populate sys ~seed ~n_flights ~n_hotels ?seats_per_flight ()] fills the
    tables.  Flight numbers start at 100, hotel ids at 1.  Every city gets
    flights on several days; [seats_per_flight] rows go into [Seats] for the
    adjacency scenario, and the same number seeds the capacity column. *)
let populate (sys : Youtopia.System.t) ~seed ~n_flights ~n_hotels
    ?(seats_per_flight = 8) () =
  let db = Youtopia.System.database sys in
  let rng = Random.State.make [| seed |] in
  let flights = Database.find_table db "Flights" in
  let seats = Database.find_table db "Seats" in
  let hotels = Database.find_table db "Hotels" in
  (* one transaction for the whole dataset: with a WAL attached the seed
     data becomes a single logged batch, so a travel system is recoverable
     from its log (raw [Table.insert] would bypass the WAL entirely) *)
  Database.with_txn db (fun txn ->
      for i = 0 to n_flights - 1 do
        let fno = 100 + i in
        (* round-robin cities so every destination has flights *)
        let dest = cities.(i mod Array.length cities) in
        let day = 1 + Random.State.int rng 30 in
        let price = 100. +. Random.State.float rng 500. in
        ignore
          (Txn.insert txn flights
             [|
               Value.Int fno;
               Value.Str "NYC";
               Value.Str dest;
               Value.Int day;
               Value.Float price;
               Value.Int seats_per_flight;
             |]);
        for seat = 1 to seats_per_flight do
          ignore
            (Txn.insert txn seats
               [| Value.Int fno; Value.Int seat; Value.Int 0 |])
        done
      done;
      for i = 0 to n_hotels - 1 do
        let hid = 1 + i in
        let city = cities.(i mod Array.length cities) in
        let day = 1 + Random.State.int rng 30 in
        let price = 50. +. Random.State.float rng 250. in
        ignore
          (Txn.insert txn hotels
             [|
               Value.Int hid;
               Value.Str city;
               Value.Int day;
               Value.Float price;
               Value.Int 20;
             |])
      done)

(** [make_system ~seed ~n_flights ~n_hotels ()] — a ready travel system.
    With [wal_path], the schema and seed data are logged so the system can
    be rebuilt by {!recover_system}. *)
let make_system ?config ?wal_path ?durability ~seed ~n_flights ~n_hotels
    ?seats_per_flight () =
  let sys = Youtopia.System.create ?config ?wal_path ?durability () in
  setup sys;
  populate sys ~seed ~n_flights ~n_hotels ?seats_per_flight ();
  sys

(** The travel answer relations, as {!Youtopia.System.recover} needs them:
    answer relations have no SQL DDL, so recovery must be told which
    replayed tables to re-adopt. *)
let answer_relation_names = [ "FlightRes"; "HotelRes"; "SeatRes" ]

(** [recover_system ~wal_path ()] rebuilds a travel system from its WAL
    (and checkpoints), re-adopting the answer relations and re-creating
    the secondary indexes — indexes are not logged. *)
let recover_system ?config ?durability ~wal_path () =
  let sys =
    Youtopia.System.recover ?config ?durability ~wal_path
      ~answer_relations:answer_relation_names ()
  in
  let db = Youtopia.System.database sys in
  let flights = Database.find_table db "Flights" in
  let hotels = Database.find_table db "Hotels" in
  ignore (Table.create_index flights "flights_by_dest" [| 2 |]);
  ignore (Table.create_index hotels "hotels_by_city" [| 1 |]);
  sys
