(** Schema and synthetic data for the travel web site.

    Substitutes for the authors' demo dataset (flights, hotels, seats) with
    a deterministic generator; the schema is what the demo scenarios need:
    flight/hotel search with date and price constraints, per-flight seat
    maps for the adjacent-seat request, and capacity columns so that
    bookings contend. *)

open Relational

val cities : string array
(** Destinations; flights round-robin over them so every city is served. *)

(** {1 Schemas} *)

val flights_schema : Schema.t  (* fno, orig, dest, day, price, seats *)
val hotels_schema : Schema.t  (* hid, city, day, price, rooms *)
val seats_schema : Schema.t  (* fno, seat, taken *)
val flight_bookings_schema : Schema.t  (* who, fno *)
val hotel_bookings_schema : Schema.t  (* who, hid *)
val flight_res_schema : Schema.t  (* answer relation: name, fno *)
val hotel_res_schema : Schema.t  (* answer relation: name, hid *)
val seat_res_schema : Schema.t  (* answer relation: name, fno, seat *)

val setup : Youtopia.System.t -> unit
(** Create all tables, answer relations, and secondary indexes. *)

val populate :
  Youtopia.System.t ->
  seed:int ->
  n_flights:int ->
  n_hotels:int ->
  ?seats_per_flight:int ->
  unit ->
  unit
(** Deterministic data: flight numbers from 100, hotel ids from 1; every
    city gets flights; [seats_per_flight] seeds both the seat map and the
    capacity column (default 8). *)

val make_system :
  ?config:Core.Coordinator.config ->
  ?wal_path:string ->
  ?durability:Wal.durability ->
  seed:int ->
  n_flights:int ->
  n_hotels:int ->
  ?seats_per_flight:int ->
  unit ->
  Youtopia.System.t
(** A ready travel system: [setup] + [populate].  With [wal_path] the
    schema and seed data are logged ([populate] runs as one transaction),
    so the system can be rebuilt by {!recover_system}. *)

val answer_relation_names : string list
(** The travel answer relations ([FlightRes], [HotelRes], [SeatRes]) —
    what {!Youtopia.System.recover} must re-adopt, since answer relations
    have no SQL DDL. *)

val recover_system :
  ?config:Core.Coordinator.config ->
  ?durability:Wal.durability ->
  wal_path:string ->
  unit ->
  Youtopia.System.t
(** Rebuild a travel system from its WAL and checkpoints: recovery plus
    answer-relation re-adoption and secondary-index re-creation (indexes
    are not logged).  Pending entangled queries are not durable — owners
    re-submit after a crash. *)
