(* Deterministic failpoint injection; see fault.mli for the contract.

   Hot path: [point]/[cut]/[skip] read one global bool.  Everything else
   (arming, hit accounting, the RNG) lives behind a mutex so concurrent
   server threads can hit the same point safely.  The action itself runs
   OUTSIDE the mutex — a [Delay] must stall only its own thread. *)

type action =
  | Error of string
  | Partial of int
  | Delay of float
  | Drop
  | Kill

exception Injected of string * string

let () =
  Printexc.register_printer (function
    | Injected (point, detail) ->
      Some (Printf.sprintf "Fault.Injected (%s: %s)" point detail)
    | _ -> None)

type state = {
  action : action;
  from_hit : int;
  one_shot : bool;
  probability : float;
  mutable hits : int;
  mutable fired : int;
  mutable spent : bool;  (* one-shot already fired: count hits, never fire *)
}

let enabled_flag = ref false
let mu = Mutex.create ()
let points : (string, state) Hashtbl.t = Hashtbl.create 16
let rng = ref (Random.State.make [| 0 |])

let trace =
  match Sys.getenv_opt "YOUTOPIA_FAULT_TRACE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let enabled () = !enabled_flag

let with_mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ---------------- spec grammar ---------------- *)

let action_to_string = function
  | Error "" -> "error"
  | Error m -> Printf.sprintf "error(%s)" m
  | Partial n -> Printf.sprintf "partial(%d)" n
  | Delay s -> Printf.sprintf "delay(%g)" s
  | Drop -> "drop"
  | Kill -> "kill"

let spec_to_string st =
  Printf.sprintf "%s%s%s%s"
    (if st.probability < 1. then
       Printf.sprintf "%d%%" (int_of_float (st.probability *. 100. +. 0.5))
     else "")
    (if st.from_hit > 1 then Printf.sprintf "%d->" st.from_hit else "")
    (action_to_string st.action)
    (if st.one_shot then "!" else "")

let parse_action s =
  let body name =
    (* "name(body)" -> Some body; "name" -> Some "" *)
    let n = String.length name in
    if s = name then Some ""
    else if
      String.length s > n + 1
      && String.sub s 0 (n + 1) = name ^ "("
      && s.[String.length s - 1] = ')'
    then Some (String.sub s (n + 1) (String.length s - n - 2))
    else None
  in
  match body "error" with
  | Some m -> Ok (Error m)
  | None -> (
    match body "partial" with
    | Some b -> (
      match int_of_string_opt b with
      | Some n when n >= 0 -> Ok (Partial n)
      | _ -> Result.Error ("bad partial byte count: " ^ s))
    | None -> (
      match body "delay" with
      | Some b -> (
        match float_of_string_opt b with
        | Some d when d >= 0. -> Ok (Delay d)
        | _ -> Result.Error ("bad delay seconds: " ^ s))
      | None -> (
        match s with
        | "drop" -> Ok Drop
        | "kill" -> Ok Kill
        | _ -> Result.Error ("unknown action: " ^ s))))

let parse_spec s =
  let s = String.trim s in
  if s = "" then Result.Error "empty spec"
  else begin
    let one_shot = s.[String.length s - 1] = '!' in
    let s = if one_shot then String.sub s 0 (String.length s - 1) else s in
    let probability, s =
      match String.index_opt s '%' with
      | Some i when i < String.length s - 1 -> (
        match int_of_string_opt (String.sub s 0 i) with
        | Some p when p >= 0 && p <= 100 ->
          ( float_of_int p /. 100.,
            String.sub s (i + 1) (String.length s - i - 1) )
        | _ -> (1., s))
      | _ -> (1., s)
    in
    let from_hit, s =
      (* "N->rest" *)
      let rec find i =
        if i + 1 < String.length s then
          if s.[i] = '-' && s.[i + 1] = '>' then Some i else find (i + 1)
        else None
      in
      match find 0 with
      | Some i -> (
        match int_of_string_opt (String.sub s 0 i) with
        | Some n when n >= 1 ->
          (n, String.sub s (i + 2) (String.length s - i - 2))
        | _ -> (1, s))
      | None -> (1, s)
    in
    match parse_action s with
    | Ok action -> Ok (action, from_hit, one_shot, probability)
    | Result.Error _ as e -> e
  end

(* ---------------- arming ---------------- *)

let arm ?(from_hit = 1) ?(one_shot = false) ?(probability = 1.) name action =
  with_mu (fun () ->
      Hashtbl.replace points name
        {
          action;
          from_hit = max 1 from_hit;
          one_shot;
          probability;
          hits = 0;
          fired = 0;
          spent = false;
        };
      enabled_flag := true)

let arm_spec name spec =
  match parse_spec spec with
  | Ok (action, from_hit, one_shot, probability) ->
    arm ~from_hit ~one_shot ~probability name action;
    Ok ()
  | Result.Error _ as e -> e

let parse_pairs s =
  let entries =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec go armed = function
    | [] -> Ok (String.concat "," (List.rev armed))
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | None -> Result.Error ("missing '=' in failpoint entry: " ^ entry)
      | Some i -> (
        let name = String.trim (String.sub entry 0 i) in
        let spec = String.sub entry (i + 1) (String.length entry - i - 1) in
        if name = "" then Result.Error ("missing point name in: " ^ entry)
        else
          match arm_spec name spec with
          | Ok () -> go (name :: armed) rest
          | Result.Error e ->
            Result.Error (Printf.sprintf "%s: %s" name e)))
  in
  go [] entries

let disarm name =
  with_mu (fun () ->
      Hashtbl.remove points name;
      if Hashtbl.length points = 0 then enabled_flag := false)

let disarm_all () =
  with_mu (fun () ->
      Hashtbl.reset points;
      enabled_flag := false)

let set_seed seed = with_mu (fun () -> rng := Random.State.make [| seed |])

let hits name =
  with_mu (fun () ->
      match Hashtbl.find_opt points name with Some st -> st.hits | None -> 0)

let fired name =
  with_mu (fun () ->
      match Hashtbl.find_opt points name with Some st -> st.fired | None -> 0)

let list () =
  with_mu (fun () ->
      Hashtbl.fold
        (fun name st acc ->
          Printf.sprintf "%s=%s hits=%d fired=%d" name (spec_to_string st)
            st.hits st.fired
          :: acc)
        points [])
  |> List.sort compare

(* ---------------- firing ---------------- *)

(* Decide under the mutex; return the action to perform outside it
   ([None] = pass). *)
let decide name =
  with_mu (fun () ->
      match Hashtbl.find_opt points name with
      | None -> None
      | Some st ->
        st.hits <- st.hits + 1;
        if st.spent || st.hits < st.from_hit then None
        else if
          st.probability < 1.
          && Random.State.float !rng 1. >= st.probability
        then None
        else begin
          st.fired <- st.fired + 1;
          if st.one_shot then st.spent <- true;
          Some st.action
        end)

let die name =
  (* flush nothing: this is a crash, the whole torture point is that
     buffered-but-unsynced state evaporates *)
  if trace then
    Printf.eprintf "[fault] %s: killing pid %d\n%!" name (Unix.getpid ());
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* unreachable (SIGKILL is not handleable), but keep the type total *)
  assert false

let traced name action =
  if trace then
    Printf.eprintf "[fault] %s fired: %s\n%!" name (action_to_string action)

let point name =
  if !enabled_flag then
    match decide name with
    | None -> ()
    | Some action -> (
      traced name action;
      match action with
      | Error m -> raise (Injected (name, if m = "" then "injected error" else m))
      | Delay s -> Thread.delay s
      | Kill -> die name
      | Partial _ | Drop ->
        raise (Injected (name, "partial/drop armed at a unit point")))

let cut name ~len =
  if not !enabled_flag then None
  else
    match decide name with
    | None -> None
    | Some action -> (
      traced name action;
      match action with
      | Partial n -> Some (min (max n 0) len)
      | Drop -> Some 0
      | Error m -> raise (Injected (name, if m = "" then "injected error" else m))
      | Delay s ->
        Thread.delay s;
        None
      | Kill -> die name)

let skip name =
  if not !enabled_flag then false
  else
    match decide name with
    | None -> false
    | Some action -> (
      traced name action;
      match action with
      | Drop | Partial _ -> true
      | Error m -> raise (Injected (name, if m = "" then "injected error" else m))
      | Delay s ->
        Thread.delay s;
        false
      | Kill -> die name)

(* ---------------- environment ---------------- *)

let init_from_env () =
  (match Sys.getenv_opt "YOUTOPIA_FAULT_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some seed -> set_seed seed
    | None -> Printf.eprintf "[fault] bad YOUTOPIA_FAULT_SEED: %s\n%!" s)
  | None -> ());
  match Sys.getenv_opt "YOUTOPIA_FAILPOINTS" with
  | None | Some "" -> ()
  | Some s -> (
    match parse_pairs s with
    | Ok armed ->
      if trace then Printf.eprintf "[fault] armed from env: %s\n%!" armed
    | Result.Error e ->
      Printf.eprintf "[fault] YOUTOPIA_FAILPOINTS: %s\n%!" e)

(* Arm from the environment as soon as any instrumented library is
   linked: the torture harness crashes the stock server binary purely by
   exporting YOUTOPIA_FAILPOINTS. *)
let () = init_from_env ()
