(** Deterministic failpoint injection.

    A {e failpoint} is a named hook compiled into a risky seam of the
    system — a WAL fsync, a frame send, a batch commit.  When nothing is
    armed the hook is a single load-and-branch on a global flag (no
    allocation, no lock, no hashing), so instrumented code pays nothing in
    production.  When a point is armed it fires a deterministic, seeded
    {!action}: raise, cut a write short, stall, drop a frame, or kill the
    process dead (SIGKILL — no flushes, no [at_exit]).

    Arming is controlled three ways, all sharing the same {e spec} grammar
    ({!arm_spec}):
    - the [YOUTOPIA_FAILPOINTS] environment variable, parsed at module
      initialisation (so the real server binary can be crashed from a
      harness without any code path knowing about it);
    - this API;
    - the [ADMIN|…|failpoint] wire command (see {!Net.Server}).

    Spec grammar (examples: [kill], [3->kill], [50%drop],
    [error(disk gone)], [2->partial(17)!]):
    {v
      spec    := [INT "%"] [INT "->"] action ["!"]
      action  := "error" [ "(" message ")" ]
               | "partial" "(" INT ")"
               | "delay" "(" SECONDS ")"
               | "drop" | "kill"
    v}
    [N%] fires with probability N/100 per eligible hit (drawn from the
    seeded RNG, see {!set_seed}); [N->] makes hits 1..N-1 pass untouched
    (trigger on the Nth hit); a trailing [!] disarms the point after its
    first firing (one-shot).

    Determinism: with a fixed seed and a single-threaded hit sequence,
    the exact same hits fire on every run.  Hit counting only happens on
    armed points — a disarmed point is not tracked at all. *)

type action =
  | Error of string  (** raise {!Injected} at the point *)
  | Partial of int  (** cut the guarded write to at most this many units *)
  | Delay of float  (** sleep this many seconds, then pass *)
  | Drop  (** skip the guarded operation (e.g. swallow a frame) *)
  | Kill  (** SIGKILL the process: a crash, not an exit *)

exception Injected of string * string
(** [Injected (point, detail)] — the armed action was [Error] (or an
    action meaningless at that call site, surfaced loudly). *)

val enabled : unit -> bool
(** At least one point is armed.  The hot-path hooks check exactly this. *)

(* ---------------- instrumentation hooks ---------------- *)

val point : string -> unit
(** The plain hook.  Disabled: free.  Armed and firing: [Error] raises
    {!Injected}, [Delay] sleeps, [Kill] kills the process; [Partial] and
    [Drop] make no sense at a unit point and raise {!Injected} too. *)

val cut : string -> len:int -> int option
(** Hook for a write of [len] units (bytes, lines).  [Some n] means the
    caller must write only the first [n] units and then fail as if the
    rest never reached the medium: [Partial k] yields [Some (min k len)],
    [Drop] yields [Some 0].  [None] means proceed normally ([Delay]
    sleeps first; [Error] raises; [Kill] kills). *)

val skip : string -> bool
(** Hook for a droppable operation (sending a frame, shipping a batch).
    [true] means silently skip it ([Drop] or [Partial]); [Error] raises,
    [Delay] sleeps then [false], [Kill] kills. *)

(* ---------------- arming ---------------- *)

val arm :
  ?from_hit:int -> ?one_shot:bool -> ?probability:float -> string -> action -> unit
(** Arm [point] with [action].  [from_hit] (default 1) is the first hit
    that may fire; [one_shot] (default false) disarms after the first
    firing; [probability] (default 1.) gates each eligible hit through
    the seeded RNG.  Re-arming an armed point replaces it (counters
    reset). *)

val arm_spec : string -> string -> (unit, string) result
(** [arm_spec point spec] — parse [spec] (grammar above) and arm. *)

val parse_pairs : string -> (string, string) result
(** Parse and arm a [;]-separated [point=spec] list (the environment /
    wire format).  [Ok summary] names every armed point. *)

val disarm : string -> unit
(** Disarm one point (idempotent). *)

val disarm_all : unit -> unit
(** Disarm everything; {!enabled} becomes false.  The seed survives. *)

val set_seed : int -> unit
(** Reseed the RNG behind probability specs.  Same seed + same hit
    sequence = same firings. *)

(* ---------------- observation ---------------- *)

val hits : string -> int
(** Times an armed point was reached (0 for unarmed/unknown points). *)

val fired : string -> int
(** Times it actually fired. *)

val list : unit -> string list
(** One line per armed point: [name=spec hits=H fired=F], sorted. *)

val init_from_env : unit -> unit
(** Read [YOUTOPIA_FAULT_SEED] and [YOUTOPIA_FAILPOINTS] (format:
    [point=spec;point=spec…]).  Malformed entries are reported on stderr
    and skipped.  Runs once automatically when the library is linked and
    initialised; callable again for tests. *)
