(** Recursive-descent parser for the Youtopia SQL dialect (see {!Ast}).

    Operator precedence (low to high): OR, AND, NOT, comparison / IN / IS,
    additive (plus, minus, concat), multiplicative (times, div, mod),
    unary minus.

    Entangled heads: the paper's grammar
    [SELECT es INTO ANSWER R [, ANSWER R'] …] contributes the same tuple to
    every listed relation; the extended form
    [SELECT (es) INTO ANSWER R, (es') INTO ANSWER R' …] contributes distinct
    tuples (needed for the flight+hotel coordination scenario). *)

open Relational

type state = { lexed : Lexer.lexed; mutable pos : int; mutable n_params : int }

let peek st = fst st.lexed.Lexer.tokens.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.lexed.Lexer.tokens then
    fst st.lexed.Lexer.tokens.(st.pos + 1)
  else Token.EOF

let offset st = snd st.lexed.Lexer.tokens.(st.pos)

let fail st msg =
  Errors.fail
    (Errors.Parse_error
       (Printf.sprintf "%s, found %s (at offset %d)" msg
          (Token.to_string (peek st))
          (offset st)))

let advance st = st.pos <- st.pos + 1

let eat st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Token.to_string tok))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Token.KW kw)
let eat_kw st kw = eat st (Token.KW kw)

let ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let integer st =
  match peek st with
  | Token.INT i ->
    advance st;
    i
  | _ -> fail st "expected integer"

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Ast.E_bin (Expr.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Ast.E_bin (Expr.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Ast.E_not (parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Token.EQ ->
    advance st;
    Ast.E_bin (Expr.Eq, lhs, parse_add st)
  | Token.NEQ ->
    advance st;
    Ast.E_bin (Expr.Neq, lhs, parse_add st)
  | Token.LT ->
    advance st;
    Ast.E_bin (Expr.Lt, lhs, parse_add st)
  | Token.LEQ ->
    advance st;
    Ast.E_bin (Expr.Leq, lhs, parse_add st)
  | Token.GT ->
    advance st;
    Ast.E_bin (Expr.Gt, lhs, parse_add st)
  | Token.GEQ ->
    advance st;
    Ast.E_bin (Expr.Geq, lhs, parse_add st)
  | Token.KW "IS" ->
    advance st;
    let negated = accept_kw st "NOT" in
    eat_kw st "NULL";
    Ast.E_is_null (lhs, not negated)
  | Token.KW "IN" -> parse_in st lhs ~negated:false
  | Token.KW "LIKE" ->
    advance st;
    Ast.E_like (lhs, parse_add st, false)
  | Token.KW "BETWEEN" ->
    advance st;
    parse_between st lhs ~negated:false
  | Token.KW "NOT" when peek2 st = Token.KW "IN" ->
    advance st;
    parse_in st lhs ~negated:true
  | Token.KW "NOT" when peek2 st = Token.KW "LIKE" ->
    advance st;
    advance st;
    Ast.E_like (lhs, parse_add st, true)
  | Token.KW "NOT" when peek2 st = Token.KW "BETWEEN" ->
    advance st;
    advance st;
    parse_between st lhs ~negated:true
  | _ -> lhs

(** Desugar [lhs [NOT] BETWEEN lo AND hi] into a conjunction. *)
and parse_between st lhs ~negated =
  let lo = parse_add st in
  eat_kw st "AND";
  let hi = parse_add st in
  let conj =
    Ast.E_bin
      ( Expr.And,
        Ast.E_bin (Expr.Geq, lhs, lo),
        Ast.E_bin (Expr.Leq, lhs, hi) )
  in
  if negated then Ast.E_not conj else conj

(** Parse the tail of [lhs [NOT] IN …]. *)
and parse_in st lhs ~negated =
  eat_kw st "IN";
  let lhs_list = match lhs with Ast.E_tuple es -> es | e -> [ e ] in
  if accept_kw st "ANSWER" then begin
    let rel = ident st in
    if negated then
      Errors.fail (Errors.Parse_error "NOT IN ANSWER is not supported");
    Ast.E_in_answer (lhs_list, rel)
  end
  else begin
    eat st Token.LPAREN;
    match peek st with
    | Token.KW "SELECT" ->
      let sub = parse_select_body st in
      eat st Token.RPAREN;
      Ast.E_in_select (lhs_list, negated, sub)
    | _ ->
      let first = parse_expr st in
      let values = ref [ first ] in
      while accept st Token.COMMA do
        values := parse_expr st :: !values
      done;
      eat st Token.RPAREN;
      let e =
        match lhs_list with
        | [ single ] -> Ast.E_in_values (single, List.rev !values)
        | _ ->
          Errors.fail
            (Errors.Parse_error "tuple IN (value list) is not supported")
      in
      if negated then Ast.E_not e else e
  end

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      loop (Ast.E_bin (Expr.Add, lhs, parse_mul st))
    | Token.MINUS ->
      advance st;
      loop (Ast.E_bin (Expr.Sub, lhs, parse_mul st))
    | Token.CONCAT ->
      advance st;
      loop (Ast.E_bin (Expr.Concat, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      loop (Ast.E_bin (Expr.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      loop (Ast.E_bin (Expr.Div, lhs, parse_unary st))
    | Token.PERCENT ->
      advance st;
      loop (Ast.E_bin (Expr.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st Token.MINUS then Ast.E_neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT i ->
    advance st;
    Ast.E_lit (Value.Int i)
  | Token.FLOAT f ->
    advance st;
    Ast.E_lit (Value.Float f)
  | Token.STRING s ->
    advance st;
    Ast.E_lit (Value.Str s)
  | Token.QMARK ->
    advance st;
    let i = st.n_params in
    st.n_params <- st.n_params + 1;
    Ast.E_param i
  | Token.KW "NULL" ->
    advance st;
    Ast.E_lit Value.Null
  | Token.KW "TRUE" ->
    advance st;
    Ast.E_lit (Value.Bool true)
  | Token.KW "FALSE" ->
    advance st;
    Ast.E_lit (Value.Bool false)
  | Token.LPAREN ->
    advance st;
    let first = parse_expr st in
    if accept st Token.COMMA then begin
      (* Tuple literal: only legal before IN / INTO ANSWER. *)
      let rest = ref [ first ] in
      let continue = ref true in
      while !continue do
        rest := parse_expr st :: !rest;
        continue := accept st Token.COMMA
      done;
      eat st Token.RPAREN;
      Ast.E_tuple (List.rev !rest)
    end
    else begin
      eat st Token.RPAREN;
      first
    end
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args =
        if peek st = Token.STAR then begin
          advance st;
          [ Ast.E_star ]
        end
        else if peek st = Token.RPAREN then []
        else begin
          let first = parse_expr st in
          let args = ref [ first ] in
          while accept st Token.COMMA do
            args := parse_expr st :: !args
          done;
          List.rev !args
        end
      in
      eat st Token.RPAREN;
      Ast.E_func (String.lowercase_ascii name, args)
    | Token.DOT ->
      advance st;
      let col = ident st in
      Ast.E_col (Some name, col)
    | _ -> Ast.E_col (None, name))
  | _ -> fail st "expected expression"

(* ------------------------------------------------------------------ *)
(* SELECT *)

and parse_select_body st : Ast.select =
  eat_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  (* Select items.  A leading tuple item signals the multi-head entangled
     form and must be followed by INTO. *)
  let items = ref [] in
  let parse_item () =
    if peek st = Token.STAR then begin
      advance st;
      Ast.S_star
    end
    else begin
      let e = parse_expr st in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Token.IDENT a ->
            advance st;
            Some a
          | _ -> None
      in
      Ast.S_expr (e, alias)
    end
  in
  items := [ parse_item () ];
  (* Multi-head form: (tuple) INTO ANSWER R, (tuple) INTO ANSWER R', …  *)
  let into_answer = ref [] in
  let head_exprs_of_item = function
    | Ast.S_expr (Ast.E_tuple es, _) -> es
    | Ast.S_expr (e, _) -> [ e ]
    | Ast.S_star ->
      Errors.fail (Errors.Parse_error "cannot use * as an entangled head")
  in
  let rec more_items () =
    if accept st Token.COMMA then begin
      items := parse_item () :: !items;
      more_items ()
    end
  in
  (* If the first item is a tuple, commas separate heads, not items; in that
     case we parse `INTO ANSWER R` right away and loop on heads. *)
  (match !items with
  | [ Ast.S_expr (Ast.E_tuple first_tuple, _) ] when peek st = Token.KW "INTO" ->
    eat_kw st "INTO";
    eat_kw st "ANSWER";
    let rel = ident st in
    into_answer := [ first_tuple, rel ];
    let rec heads () =
      if accept st Token.COMMA then begin
        if accept_kw st "ANSWER" then begin
          (* same tuple into another relation *)
          let rel' = ident st in
          into_answer := (first_tuple, rel') :: !into_answer;
          heads ()
        end
        else begin
          let item = parse_item () in
          eat_kw st "INTO";
          eat_kw st "ANSWER";
          let rel' = ident st in
          into_answer := (head_exprs_of_item item, rel') :: !into_answer;
          heads ()
        end
      end
    in
    heads ();
    items := []
  | _ ->
    more_items ();
    (* Paper form: items INTO ANSWER R [, ANSWER R'] … *)
    if accept_kw st "INTO" then begin
      eat_kw st "ANSWER";
      let tuple = List.concat_map head_exprs_of_item (List.rev !items) in
      let rel = ident st in
      into_answer := [ tuple, rel ];
      while peek st = Token.COMMA && peek2 st = Token.KW "ANSWER" do
        advance st;
        (* COMMA *)
        eat_kw st "ANSWER";
        let rel' = ident st in
        into_answer := (tuple, rel') :: !into_answer
      done;
      items := []
    end);
  let items = List.rev !items in
  let into_answer = List.rev !into_answer in
  (* FROM with comma and JOIN … ON (inner ON folded into WHERE); LEFT
     [OUTER] JOINs are kept separate — they apply after the inner block. *)
  let from = ref [] in
  let left_joins = ref [] in
  let join_preds = ref [] in
  if accept_kw st "FROM" then begin
    let parse_from_ref () =
      let source =
        if peek st = Token.LPAREN then begin
          advance st;
          if peek st <> Token.KW "SELECT" then
            fail st "expected SELECT in derived table";
          let sub = parse_select_body st in
          eat st Token.RPAREN;
          Ast.F_subquery sub
        end
        else Ast.F_table (ident st)
      in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Token.IDENT a ->
            advance st;
            Some a
          | _ -> None
      in
      Ast.{ f_source = source; f_alias = alias }
    in
    let parse_from_item () = from := parse_from_ref () :: !from in
    parse_from_item ();
    let rec joins () =
      if accept st Token.COMMA then begin
        parse_from_item ();
        joins ()
      end
      else if peek st = Token.KW "LEFT" then begin
        advance st;
        ignore (accept_kw st "OUTER");
        eat_kw st "JOIN";
        let item = parse_from_ref () in
        if not (accept_kw st "ON") then fail st "expected ON after LEFT JOIN";
        left_joins := (item, parse_expr st) :: !left_joins;
        joins ()
      end
      else if peek st = Token.KW "JOIN"
              || peek st = Token.KW "INNER"
              || peek st = Token.KW "CROSS"
      then begin
        let cross = accept_kw st "CROSS" in
        ignore (accept_kw st "INNER");
        eat_kw st "JOIN";
        parse_from_item ();
        if not cross then
          if accept_kw st "ON" then join_preds := parse_expr st :: !join_preds
          else fail st "expected ON after JOIN";
        joins ()
      end
    in
    joins ()
  end;
  let where =
    if accept_kw st "WHERE" then Some (parse_expr st) else None
  in
  (* Fulfilment effects: THEN <dml> [THEN <dml>] … — each clause is one
     effect, so the commas inside SET lists and VALUES tuples are
     unambiguous. *)
  let fulfilment = ref [] in
  while peek st = Token.KW "THEN" do
    advance st;
    fulfilment := parse_fulfilment_effect st :: !fulfilment
  done;
  let fulfilment = List.rev !fulfilment in
  let where =
    match List.rev !join_preds, where with
    | [], w -> w
    | preds, None ->
      Some
        (List.fold_left
           (fun acc p -> Ast.E_bin (Expr.And, acc, p))
           (List.hd preds) (List.tl preds))
    | preds, Some w ->
      Some (List.fold_left (fun acc p -> Ast.E_bin (Expr.And, acc, p)) w preds)
  in
  let group_by =
    if accept_kw st "GROUP" then begin
      eat_kw st "BY";
      let first = parse_expr st in
      let acc = ref [ first ] in
      while accept st Token.COMMA do
        acc := parse_expr st :: !acc
      done;
      List.rev !acc
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      eat_kw st "BY";
      let parse_key () =
        let e = parse_expr st in
        let dir =
          if accept_kw st "DESC" then Plan.Desc
          else begin
            ignore (accept_kw st "ASC");
            Plan.Asc
          end
        in
        e, dir
      in
      let acc = ref [ parse_key () ] in
      while accept st Token.COMMA do
        acc := parse_key () :: !acc
      done;
      List.rev !acc
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (integer st) else None in
  let choose = if accept_kw st "CHOOSE" then Some (integer st) else None in
  let setop =
    let kind =
      if accept_kw st "UNION" then Some Plan.Union
      else if accept_kw st "INTERSECT" then Some Plan.Intersect
      else if accept_kw st "EXCEPT" then Some Plan.Except
      else None
    in
    match kind with
    | None -> None
    | Some kind ->
      let all = accept_kw st "ALL" in
      Some (kind, all, parse_select_body st)
  in
  {
    Ast.distinct;
    items;
    into_answer;
    from = List.rev !from;
    left_joins = List.rev !left_joins;
    where;
    fulfilment;
    group_by;
    having;
    order_by;
    limit;
    choose;
    setop;
  }

(* One THEN clause.  WHERE parts are restricted to [col = term AND …] —
   that is all the fulfilment executor supports (equality pins against the
   match's substitution), so richer predicates are rejected at parse time.
   Right-hand sides use the additive grammar: AND must terminate a pin, and
   comparisons inside a pin value are meaningless. *)
and parse_fulfilment_effect st : Ast.fulfilment_effect =
  let parse_eq_pins () =
    let parse_pin () =
      let col = ident st in
      eat st Token.EQ;
      col, parse_add st
    in
    let acc = ref [ parse_pin () ] in
    while accept_kw st "AND" do
      acc := parse_pin () :: !acc
    done;
    List.rev !acc
  in
  if accept_kw st "INSERT" then begin
    eat_kw st "INTO";
    let table = ident st in
    eat_kw st "VALUES";
    eat st Token.LPAREN;
    let acc = ref [ parse_add st ] in
    while accept st Token.COMMA do
      acc := parse_add st :: !acc
    done;
    eat st Token.RPAREN;
    Ast.Fx_insert (table, List.rev !acc)
  end
  else if accept_kw st "UPDATE" then begin
    let table = ident st in
    eat_kw st "SET";
    let parse_set () =
      let col = ident st in
      eat st Token.EQ;
      col, parse_add st
    in
    let sets = ref [ parse_set () ] in
    while accept st Token.COMMA do
      sets := parse_set () :: !sets
    done;
    eat_kw st "WHERE";
    Ast.Fx_update
      { fx_table = table; fx_set = List.rev !sets; fx_where = parse_eq_pins () }
  end
  else if accept_kw st "DECREMENT" then begin
    let table = ident st in
    eat st Token.DOT;
    let column = ident st in
    eat_kw st "WHERE";
    Ast.Fx_decrement
      { fx_table = table; fx_column = column; fx_where = parse_eq_pins () }
  end
  else fail st "expected INSERT, UPDATE or DECREMENT after THEN"

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_column_defs st =
  eat st Token.LPAREN;
  let cols = ref [] in
  let table_pk = ref [] in
  let parse_one () =
    if peek st = Token.KW "PRIMARY" then begin
      advance st;
      eat_kw st "KEY";
      eat st Token.LPAREN;
      let acc = ref [ ident st ] in
      while accept st Token.COMMA do
        acc := ident st :: !acc
      done;
      eat st Token.RPAREN;
      table_pk := List.rev !acc
    end
    else begin
      let name = ident st in
      let ty_name =
        match peek st with
        | Token.IDENT s ->
          advance st;
          s
        | _ -> fail st "expected column type"
      in
      let c_type =
        match Ctype.of_string ty_name with
        | Some t -> t
        | None ->
          Errors.fail (Errors.Parse_error ("unknown column type " ^ ty_name))
      in
      let c_nullable = ref true in
      let c_primary = ref false in
      let rec modifiers () =
        if accept_kw st "NOT" then begin
          eat_kw st "NULL";
          c_nullable := false;
          modifiers ()
        end
        else if accept_kw st "NULL" then modifiers ()
        else if accept_kw st "PRIMARY" then begin
          eat_kw st "KEY";
          c_primary := true;
          c_nullable := false;
          modifiers ()
        end
      in
      modifiers ();
      cols :=
        Ast.{ c_name = name; c_type; c_nullable = !c_nullable; c_primary = !c_primary }
        :: !cols
    end
  in
  parse_one ();
  while accept st Token.COMMA do
    parse_one ()
  done;
  eat st Token.RPAREN;
  List.rev !cols, !table_pk

let rec parse_statement st : Ast.statement =
  match peek st with
  | Token.KW "SELECT" -> Ast.Select (parse_select_body st)
  | Token.KW "EXPLAIN" ->
    advance st;
    if accept_kw st "ANALYZE" then begin
      if peek st <> Token.KW "SELECT" then
        fail st "EXPLAIN ANALYZE takes a SELECT";
      Ast.Explain_analyze (parse_select_body st)
    end
    else Ast.Explain (parse_statement st)
  | Token.KW "ANALYZE" ->
    advance st;
    Ast.Analyze (ident st)
  | Token.KW "SHOW" ->
    advance st;
    if accept_kw st "TABLES" then Ast.Show_tables
    else if accept_kw st "PENDING" then Ast.Show_pending
    else fail st "expected TABLES or PENDING after SHOW"
  | Token.KW "BEGIN" ->
    advance st;
    Ast.Begin_txn
  | Token.KW "COMMIT" ->
    advance st;
    Ast.Commit_txn
  | Token.KW "ROLLBACK" ->
    advance st;
    Ast.Rollback_txn
  | Token.KW "CREATE" -> (
    advance st;
    let unique = accept_kw st "UNIQUE" in
    if accept_kw st "TABLE" then begin
      if unique then fail st "UNIQUE TABLE is not a thing";
      let name = ident st in
      if accept_kw st "AS" then begin
        if peek st <> Token.KW "SELECT" then fail st "expected SELECT after AS";
        Ast.Create_table_as { cta_name = name; cta_query = parse_select_body st }
      end
      else begin
      let cols, table_pk = parse_column_defs st in
      let col_pk =
        List.filter_map
          (fun c -> if c.Ast.c_primary then Some c.Ast.c_name else None)
          cols
      in
      let t_primary_key =
        match table_pk, col_pk with
        | [], pk -> pk
        | pk, [] -> pk
        | _ ->
          Errors.fail
            (Errors.Parse_error
               "both table-level and column-level PRIMARY KEY given")
      in
      Ast.Create_table { t_name = name; t_columns = cols; t_primary_key }
      end
    end
    else if accept_kw st "VIEW" then begin
      if unique then fail st "UNIQUE VIEW is not a thing";
      let name = ident st in
      eat_kw st "AS";
      if peek st <> Token.KW "SELECT" then fail st "expected SELECT after AS";
      Ast.Create_view { v_name = name; v_query = parse_select_body st }
    end
    else if accept_kw st "INDEX" then begin
      let i_name = ident st in
      eat_kw st "ON";
      let i_table = ident st in
      eat st Token.LPAREN;
      let acc = ref [ ident st ] in
      while accept st Token.COMMA do
        acc := ident st :: !acc
      done;
      eat st Token.RPAREN;
      Ast.Create_index
        { i_name; i_table; i_columns = List.rev !acc; i_unique = unique }
    end
    else fail st "expected TABLE, VIEW or INDEX after CREATE")
  | Token.KW "DROP" ->
    advance st;
    if accept_kw st "VIEW" then Ast.Drop_view (ident st)
    else begin
      eat_kw st "TABLE";
      Ast.Drop_table (ident st)
    end
  | Token.KW "INSERT" ->
    advance st;
    eat_kw st "INTO";
    let table = ident st in
    let columns =
      if peek st = Token.LPAREN then begin
        advance st;
        let acc = ref [ ident st ] in
        while accept st Token.COMMA do
          acc := ident st :: !acc
        done;
        eat st Token.RPAREN;
        Some (List.rev !acc)
      end
      else None
    in
    if peek st = Token.KW "SELECT" then
      Ast.Insert
        {
          in_table = table;
          in_columns = columns;
          in_rows = [];
          in_select = Some (parse_select_body st);
        }
    else begin
      eat_kw st "VALUES";
      let parse_row () =
        eat st Token.LPAREN;
        let acc = ref [ parse_expr st ] in
        while accept st Token.COMMA do
          acc := parse_expr st :: !acc
        done;
        eat st Token.RPAREN;
        List.rev !acc
      in
      let rows = ref [ parse_row () ] in
      while accept st Token.COMMA do
        rows := parse_row () :: !rows
      done;
      Ast.Insert
        {
          in_table = table;
          in_columns = columns;
          in_rows = List.rev !rows;
          in_select = None;
        }
    end
  | Token.KW "UPDATE" ->
    advance st;
    let table = ident st in
    eat_kw st "SET";
    let parse_set () =
      let col = ident st in
      eat st Token.EQ;
      col, parse_expr st
    in
    let sets = ref [ parse_set () ] in
    while accept st Token.COMMA do
      sets := parse_set () :: !sets
    done;
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Ast.Update { u_table = table; u_sets = List.rev !sets; u_where = where }
  | Token.KW "DELETE" ->
    advance st;
    eat_kw st "FROM";
    let table = ident st in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Ast.Delete { d_table = table; d_where = where }
  | _ -> fail st "expected a statement"

(** [parse_one sql] parses a single statement (trailing [;] allowed). *)
let parse_one sql =
  let st = { lexed = Lexer.tokenize sql; pos = 0; n_params = 0 } in
  let stmt = parse_statement st in
  ignore (accept st Token.SEMI);
  if peek st <> Token.EOF then fail st "trailing input after statement";
  stmt

(** [parse_prepared sql] — like {!parse_one} but also returns the number of
    positional [?] parameters. *)
let parse_prepared sql =
  let st = { lexed = Lexer.tokenize sql; pos = 0; n_params = 0 } in
  let stmt = parse_statement st in
  ignore (accept st Token.SEMI);
  if peek st <> Token.EOF then fail st "trailing input after statement";
  stmt, st.n_params

(** [parse_script sql] parses a [;]-separated script. *)
let parse_script sql =
  let st = { lexed = Lexer.tokenize sql; pos = 0; n_params = 0 } in
  let acc = ref [] in
  while peek st <> Token.EOF do
    acc := parse_statement st :: !acc;
    if peek st <> Token.EOF then eat st Token.SEMI
  done;
  List.rev !acc

(** [parse_expression s] parses a standalone expression (for tests). *)
let parse_expression s =
  let st = { lexed = Lexer.tokenize s; pos = 0; n_params = 0 } in
  let e = parse_expr st in
  if peek st <> Token.EOF then fail st "trailing input after expression";
  e
