(** Render AST back to SQL text (round-trip tested against the parser). *)

open Relational

let rec expr ppf (e : Ast.expr) =
  match e with
  | Ast.E_lit v -> Value.pp ppf v
  | Ast.E_param i -> Fmt.pf ppf "?%d" i
  | Ast.E_col (None, n) -> Fmt.string ppf n
  | Ast.E_col (Some q, n) -> Fmt.pf ppf "%s.%s" q n
  | Ast.E_neg e -> Fmt.pf ppf "(-%a)" expr e
  | Ast.E_not e -> Fmt.pf ppf "(NOT %a)" expr e
  | Ast.E_is_null (e, true) -> Fmt.pf ppf "(%a IS NULL)" expr e
  | Ast.E_is_null (e, false) -> Fmt.pf ppf "(%a IS NOT NULL)" expr e
  | Ast.E_bin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" expr a (Expr.binop_to_string op) expr b
  | Ast.E_in_values (e, vs) ->
    Fmt.pf ppf "(%a IN (%a))" expr e Fmt.(list ~sep:(any ", ") expr) vs
  | Ast.E_in_select (es, negated, sub) ->
    Fmt.pf ppf "(%a %sIN (%a))" tuple es
      (if negated then "NOT " else "")
      select sub
  | Ast.E_in_answer (es, rel) -> Fmt.pf ppf "(%a IN ANSWER %s)" tuple es rel
  | Ast.E_like (a, b, negated) ->
    Fmt.pf ppf "(%a %sLIKE %a)" expr a (if negated then "NOT " else "") expr b
  | Ast.E_func (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") expr) args
  | Ast.E_star -> Fmt.string ppf "*"
  | Ast.E_tuple es -> tuple ppf es

and tuple ppf = function
  | [ e ] -> expr ppf e
  | es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") expr) es

and fulfilment_effect ppf (fx : Ast.fulfilment_effect) =
  let pins ppf ps =
    Fmt.(list ~sep:(any " AND ") (fun ppf (c, e) -> pf ppf "%s = %a" c expr e))
      ppf ps
  in
  match fx with
  | Ast.Fx_insert (table, es) ->
    Fmt.pf ppf "INSERT INTO %s VALUES (%a)" table
      Fmt.(list ~sep:(any ", ") expr)
      es
  | Ast.Fx_update { fx_table; fx_set; fx_where } ->
    Fmt.pf ppf "UPDATE %s SET %a WHERE %a" fx_table
      Fmt.(list ~sep:(any ", ") (fun ppf (c, e) -> pf ppf "%s = %a" c expr e))
      fx_set pins fx_where
  | Ast.Fx_decrement { fx_table; fx_column; fx_where } ->
    Fmt.pf ppf "DECREMENT %s.%s WHERE %a" fx_table fx_column pins fx_where

and select ppf (s : Ast.select) =
  Fmt.pf ppf "SELECT ";
  if s.Ast.distinct then Fmt.pf ppf "DISTINCT ";
  (match s.Ast.items, s.Ast.into_answer with
  | items, [] ->
    Fmt.(list ~sep:(any ", "))
      (fun ppf -> function
        | Ast.S_star -> Fmt.string ppf "*"
        | Ast.S_expr (e, None) -> expr ppf e
        | Ast.S_expr (e, Some a) -> Fmt.pf ppf "%a AS %s" expr e a)
      ppf items
  | _, heads ->
    Fmt.(list ~sep:(any ", "))
      (fun ppf (es, rel) -> Fmt.pf ppf "%a INTO ANSWER %s" tuple es rel)
      ppf heads);
  let from_item ppf (f : Ast.from_item) =
    (match f.Ast.f_source with
    | Ast.F_table name -> Fmt.string ppf name
    | Ast.F_subquery sub -> Fmt.pf ppf "(%a)" select sub);
    match f.Ast.f_alias with None -> () | Some a -> Fmt.pf ppf " %s" a
  in
  (match s.Ast.from with
  | [] -> ()
  | from ->
    Fmt.pf ppf " FROM %a" Fmt.(list ~sep:(any ", ") from_item) from);
  List.iter
    (fun (f, on_pred) ->
      Fmt.pf ppf " LEFT JOIN %a ON %a" from_item f expr on_pred)
    s.Ast.left_joins;
  (match s.Ast.where with
  | None -> ()
  | Some w -> Fmt.pf ppf " WHERE %a" expr w);
  List.iter (fun fx -> Fmt.pf ppf " THEN %a" fulfilment_effect fx) s.Ast.fulfilment;
  (match s.Ast.group_by with
  | [] -> ()
  | gs -> Fmt.pf ppf " GROUP BY %a" Fmt.(list ~sep:(any ", ") expr) gs);
  (match s.Ast.having with
  | None -> ()
  | Some h -> Fmt.pf ppf " HAVING %a" expr h);
  (match s.Ast.order_by with
  | [] -> ()
  | os ->
    Fmt.pf ppf " ORDER BY %a"
      Fmt.(
        list ~sep:(any ", ") (fun ppf (e, d) ->
            Fmt.pf ppf "%a %s" expr e
              (match d with Plan.Asc -> "ASC" | Plan.Desc -> "DESC")))
      os);
  (match s.Ast.limit with None -> () | Some n -> Fmt.pf ppf " LIMIT %d" n);
  (match s.Ast.choose with None -> () | Some k -> Fmt.pf ppf " CHOOSE %d" k);
  match s.Ast.setop with
  | None -> ()
  | Some (kind, all, rhs) ->
    Fmt.pf ppf " %s%s %a"
      (match kind with
      | Relational.Plan.Union -> "UNION"
      | Relational.Plan.Intersect -> "INTERSECT"
      | Relational.Plan.Except -> "EXCEPT")
      (if all then " ALL" else "")
      select rhs

let rec statement ppf (st : Ast.statement) =
  match st with
  | Ast.Select s -> select ppf s
  | Ast.Create_table { t_name; t_columns; t_primary_key } ->
    let col ppf (c : Ast.column_def) =
      Fmt.pf ppf "%s %s%s" c.Ast.c_name
        (Ctype.to_string c.Ast.c_type)
        (if c.Ast.c_nullable then "" else " NOT NULL")
    in
    Fmt.pf ppf "CREATE TABLE %s (%a%a)" t_name
      Fmt.(list ~sep:(any ", ") col)
      t_columns
      (fun ppf -> function
        | [] -> ()
        | pk ->
          Fmt.pf ppf ", PRIMARY KEY (%a)" Fmt.(list ~sep:(any ", ") string) pk)
      t_primary_key
  | Ast.Drop_table n -> Fmt.pf ppf "DROP TABLE %s" n
  | Ast.Create_view { v_name; v_query } ->
    Fmt.pf ppf "CREATE VIEW %s AS %a" v_name select v_query
  | Ast.Drop_view n -> Fmt.pf ppf "DROP VIEW %s" n
  | Ast.Create_index { i_name; i_table; i_columns; i_unique } ->
    Fmt.pf ppf "CREATE %sINDEX %s ON %s (%a)"
      (if i_unique then "UNIQUE " else "")
      i_name i_table
      Fmt.(list ~sep:(any ", ") string)
      i_columns
  | Ast.Insert { in_table; in_columns; in_rows; in_select } -> (
    Fmt.pf ppf "INSERT INTO %s%a " in_table
      (fun ppf -> function
        | None -> ()
        | Some cols ->
          Fmt.pf ppf " (%a)" Fmt.(list ~sep:(any ", ") string) cols)
      in_columns;
    match in_select with
    | Some sub -> select ppf sub
    | None ->
      Fmt.pf ppf "VALUES %a"
        Fmt.(
          list ~sep:(any ", ") (fun ppf row ->
              Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") expr) row))
        in_rows)
  | Ast.Create_table_as { cta_name; cta_query } ->
    Fmt.pf ppf "CREATE TABLE %s AS %a" cta_name select cta_query
  | Ast.Update { u_table; u_sets; u_where } ->
    Fmt.pf ppf "UPDATE %s SET %a" u_table
      Fmt.(
        list ~sep:(any ", ") (fun ppf (c, e) -> Fmt.pf ppf "%s = %a" c expr e))
      u_sets;
    (match u_where with None -> () | Some w -> Fmt.pf ppf " WHERE %a" expr w)
  | Ast.Delete { d_table; d_where } ->
    Fmt.pf ppf "DELETE FROM %s" d_table;
    (match d_where with None -> () | Some w -> Fmt.pf ppf " WHERE %a" expr w)
  | Ast.Explain s -> Fmt.pf ppf "EXPLAIN %a" statement s
  | Ast.Explain_analyze s -> Fmt.pf ppf "EXPLAIN ANALYZE %a" select s
  | Ast.Analyze t -> Fmt.pf ppf "ANALYZE %s" t
  | Ast.Show_tables -> Fmt.string ppf "SHOW TABLES"
  | Ast.Show_pending -> Fmt.string ppf "SHOW PENDING"
  | Ast.Begin_txn -> Fmt.string ppf "BEGIN"
  | Ast.Commit_txn -> Fmt.string ppf "COMMIT"
  | Ast.Rollback_txn -> Fmt.string ppf "ROLLBACK"

let expr_to_string e = Fmt.str "%a" expr e
let select_to_string s = Fmt.str "%a" select s
let statement_to_string st = Fmt.str "%a" statement st
