(** Compilation of plain (non-entangled) SELECTs into physical plans, plus
    expression resolution helpers shared by UPDATE/DELETE.

    Uncorrelated [IN (SELECT …)] subqueries are evaluated eagerly at compile
    time and folded into {!Relational.Expr.In_tuples} constants; a correlated
    reference surfaces as a [No_such_column] error inside the subquery, which
    is the documented limitation.  Entangled constructs ([INTO ANSWER],
    [IN ANSWER]) are rejected here — they are translated by [Core.Translate]
    into the coordination IR instead. *)

open Relational

(* View expansion depth guard: a view referring (transitively) to itself
   would otherwise recurse forever. *)
let view_depth = ref 0
let max_view_depth = 16

let aggregate_functions = [ "count"; "sum"; "avg"; "min"; "max" ]
let is_aggregate_name f = List.mem f aggregate_functions

let rec has_aggregate (e : Ast.expr) =
  match e with
  | Ast.E_lit _ | Ast.E_param _ | Ast.E_col _ | Ast.E_star -> false
  | Ast.E_neg a | Ast.E_not a | Ast.E_is_null (a, _) -> has_aggregate a
  | Ast.E_bin (_, a, b) -> has_aggregate a || has_aggregate b
  | Ast.E_in_values (a, vs) -> has_aggregate a || List.exists has_aggregate vs
  | Ast.E_in_select (es, _, _) -> List.exists has_aggregate es
  | Ast.E_in_answer (es, _) -> List.exists has_aggregate es
  | Ast.E_like (a, b, _) -> has_aggregate a || has_aggregate b
  | Ast.E_func (f, args) -> is_aggregate_name f || List.exists has_aggregate args
  | Ast.E_tuple es -> List.exists has_aggregate es

(* ------------------------------------------------------------------ *)
(* Name resolution environment: sources in FROM order. *)

type env = { sources : (string * Schema.t * int) list  (** alias, schema, offset *) }

let env_of_schemas (sources : (string * Schema.t) list) =
  let _, items =
    List.fold_left
      (fun (offset, acc) (alias, schema) ->
        offset + Schema.arity schema, (alias, schema, offset) :: acc)
      (0, []) sources
  in
  { sources = List.rev items }

let lookup_env env qualifier name =
  match qualifier with
  | Some q -> (
    let lq = String.lowercase_ascii q in
    match
      List.find_opt
        (fun (alias, _, _) -> String.lowercase_ascii alias = lq)
        env.sources
    with
    | None -> None
    | Some (_, schema, offset) ->
      Option.map (fun i -> offset + i) (Schema.find_column schema name))
  | None -> (
    let hits =
      List.filter_map
        (fun (_, schema, offset) ->
          Option.map (fun i -> offset + i) (Schema.find_column schema name))
        env.sources
    in
    match hits with
    | [ g ] -> Some g
    | [] -> None
    | _ :: _ :: _ ->
      Errors.fail (Errors.No_such_column ("ambiguous column " ^ name)))

(* ------------------------------------------------------------------ *)
(* Expression translation. *)

let rec translate_expr cat env (e : Ast.expr) : Expr.t =
  match e with
  | Ast.E_lit v -> Expr.Const v
  | Ast.E_param i ->
    Errors.fail
      (Errors.Parse_error
         (Printf.sprintf
            "unbound parameter ?%d (bind values with Prepared.exec)" i))
  | Ast.E_col (q, n) -> (
    match lookup_env env q n with
    | Some g -> Expr.Col g
    | None ->
      let shown = match q with Some q -> q ^ "." ^ n | None -> n in
      Errors.fail (Errors.No_such_column shown))
  | Ast.E_neg a -> Expr.Unop (Expr.Neg, translate_expr cat env a)
  | Ast.E_not a -> Expr.Unop (Expr.Not, translate_expr cat env a)
  | Ast.E_is_null (a, positive) ->
    Expr.Unop
      ((if positive then Expr.Is_null else Expr.Is_not_null),
       translate_expr cat env a)
  | Ast.E_bin (op, a, b) ->
    Expr.Binop (op, translate_expr cat env a, translate_expr cat env b)
  | Ast.E_in_values (a, vs) -> (
    let a = translate_expr cat env a in
    let vs = List.map (translate_expr cat env) vs in
    let constants =
      List.map (function Expr.Const v -> Some v | _ -> None) vs
    in
    if List.for_all Option.is_some constants then
      Expr.In_list (a, List.filter_map Fun.id constants)
    else
      (* Non-constant list: expand to a disjunction of equalities. *)
      List.fold_left
        (fun acc v -> Expr.Binop (Expr.Or, acc, Expr.Binop (Expr.Eq, a, v)))
        (Expr.Const (Value.Bool false))
        vs)
  | Ast.E_in_select (es, negated, sub) ->
    let es = List.map (translate_expr cat env) es in
    let plan = compile_select cat sub in
    let rows = Executor.run cat plan in
    if Schema.arity plan.Plan.schema <> List.length es then
      Errors.type_errorf "IN subquery returns %d column(s), left side has %d"
        (Schema.arity plan.Plan.schema)
        (List.length es);
    Expr.In_tuples (es, Tuple.Set.of_list rows, negated)
  | Ast.E_in_answer _ ->
    Errors.fail
      (Errors.Parse_error
         "IN ANSWER constraints are only allowed in entangled queries \
          (missing INTO ANSWER clause?)")
  | Ast.E_like (a, b, negated) ->
    let like = Expr.Like (translate_expr cat env a, translate_expr cat env b) in
    if negated then Expr.Unop (Expr.Not, like) else like
  | Ast.E_func (f, _) when is_aggregate_name f ->
    Errors.fail
      (Errors.Parse_error
         ("aggregate " ^ f ^ " is not allowed in this context"))
  | Ast.E_func (f, args) -> (
    let args = List.map (translate_expr cat env) args in
    let unary fn =
      match args with
      | [ _ ] -> Expr.Fn (fn, args)
      | _ ->
        Errors.fail (Errors.Parse_error (f ^ " expects exactly one argument"))
    in
    match f with
    | "lower" -> unary Expr.Lower
    | "upper" -> unary Expr.Upper
    | "length" -> unary Expr.Length
    | "abs" -> unary Expr.Abs
    | "coalesce" ->
      if args = [] then
        Errors.fail (Errors.Parse_error "coalesce needs at least one argument")
      else Expr.Fn (Expr.Coalesce, args)
    | _ -> Errors.fail (Errors.Parse_error ("unknown function " ^ f)))
  | Ast.E_star ->
    Errors.fail (Errors.Parse_error "* is not allowed in this context")
  | Ast.E_tuple _ ->
    Errors.fail
      (Errors.Parse_error "tuple expression outside IN / INTO ANSWER")

(* ------------------------------------------------------------------ *)
(* SELECT compilation. *)

and compile_select cat (s : Ast.select) : Plan.t =
  if s.Ast.into_answer <> [] then
    Errors.internalf "entangled query reached the plain SQL compiler";
  if s.Ast.choose <> None then
    Errors.fail
      (Errors.Parse_error "CHOOSE requires an entangled query (INTO ANSWER)");
  if s.Ast.fulfilment <> [] then
    Errors.fail
      (Errors.Parse_error
         "THEN effects require an entangled query (INTO ANSWER)");
  (* Sources and environment.  The environment covers the inner FROM block
     followed by the LEFT JOIN tables (in join order), so positions past the
     inner block refer to null-padded columns.  Each source is either a
     stored table or a derived table (a FROM-clause subquery, evaluated
     eagerly like IN-subqueries). *)
  let rec of_item (f : Ast.from_item) =
    match f.Ast.f_source with
    | Ast.F_table name -> (
      match Catalog.find_opt cat name with
      | Some table ->
        let alias = Option.value ~default:name f.Ast.f_alias in
        alias, Planner.make_source alias table, Table.schema table
      | None -> (
        (* not a table: maybe a view — inline its definition as a derived
           table under the same alias *)
        match Catalog.find_view cat name with
        | None -> Errors.fail (Errors.No_such_table name)
        | Some text -> (
          if !view_depth >= max_view_depth then
            Errors.fail
              (Errors.Parse_error
                 ("view nesting too deep while expanding " ^ name
                ^ " (cyclic view definition?)"));
          incr view_depth;
          Fun.protect
            ~finally:(fun () -> decr view_depth)
            (fun () ->
              match Parser.parse_one text with
              | Ast.Select sub ->
                of_item
                  {
                    Ast.f_source = Ast.F_subquery sub;
                    f_alias = Some (Option.value ~default:name f.Ast.f_alias);
                  }
              | _ ->
                Errors.internalf "view %s does not store a SELECT" name))))
    | Ast.F_subquery sub ->
      let alias =
        match f.Ast.f_alias with
        | Some a -> a
        | None ->
          Errors.fail (Errors.Parse_error "derived table requires an alias")
      in
      if sub.Ast.into_answer <> [] then
        Errors.fail
          (Errors.Parse_error "entangled query cannot be a derived table");
      let plan = compile_select cat sub in
      let rows = Executor.run cat plan in
      ( alias,
        Planner.make_derived alias plan.Plan.schema rows,
        plan.Plan.schema )
  in
  let sources = List.map of_item s.Ast.from in
  let lj_sources = List.map (fun (f, on) -> of_item f, on) s.Ast.left_joins in
  let aliases =
    List.map
      (fun (a, _, _) -> String.lowercase_ascii a)
      (sources @ List.map fst lj_sources)
  in
  let rec dup = function
    | [] -> None
    | a :: rest -> if List.mem a rest then Some a else dup rest
  in
  (match dup aliases with
  | Some a -> Errors.fail (Errors.Parse_error ("duplicate table alias " ^ a))
  | None -> ());
  let env =
    env_of_schemas
      (List.map
         (fun (alias, _, schema) -> alias, schema)
         (sources @ List.map fst lj_sources))
  in
  let inner_arity =
    List.fold_left
      (fun acc (_, _, schema) -> acc + Schema.arity schema)
      0 sources
  in
  let where =
    match s.Ast.where with
    | None -> Expr.Const (Value.Bool true)
    | Some w -> translate_expr cat env w
  in
  (* conjuncts touching only the inner block go to the planner; the rest
     filter after the outer joins *)
  let inner_where, post_where =
    List.partition
      (fun e -> List.for_all (fun c -> c < inner_arity) (Expr.columns e))
      (Expr.conjuncts where)
  in
  if post_where <> [] && lj_sources = [] then
    Errors.internalf "post-join predicates without left joins";
  let planner_sources = List.map (fun (_, src, _) -> src) sources in
  let base = Planner.plan_joins planner_sources (Expr.conjoin inner_where) in
  (* fold in the LEFT JOINs; each ON predicate may only reference tables
     joined so far *)
  let base, _ =
    List.fold_left
      (fun (plan, arity) ((alias, src, schema), on) ->
        let right =
          Planner.plan_joins [ src ] (Expr.Const (Value.Bool true))
        in
        let arity' = arity + Schema.arity schema in
        let pred = translate_expr cat env on in
        List.iter
          (fun c ->
            if c >= arity' then
              Errors.fail
                (Errors.Parse_error
                   ("LEFT JOIN ON for " ^ alias
                  ^ " references a table joined later")))
          (Expr.columns pred);
        Plan.left_join ~pred plan right, arity')
      (base, inner_arity) lj_sources
  in
  let base =
    if post_where = [] then base
    else Plan.filter (Expr.conjoin post_where) base
  in
  let grouped = s.Ast.group_by <> [] || List.exists
                  (function Ast.S_star -> false | Ast.S_expr (e, _) -> has_aggregate e)
                  s.Ast.items
  in
  let qualified_name (alias, _, _) (c : Schema.column) =
    if List.length env.sources > 1 then alias ^ "." ^ c.Schema.col_name
    else c.Schema.col_name
  in
  let plan =
    if not grouped then begin
      (* ORDER BY over the source columns, before projection. *)
      let order_keys =
        List.map
          (fun (e, dir) ->
            let e =
              match e with
              | Ast.E_lit (Value.Int k) -> (
                (* positional reference to a select item *)
                match List.nth_opt s.Ast.items (k - 1) with
                | Some (Ast.S_expr (item, _)) -> translate_expr cat env item
                | Some Ast.S_star | None ->
                  Errors.fail
                    (Errors.Parse_error
                       (Printf.sprintf "ORDER BY position %d out of range" k)))
              | e -> translate_expr cat env e
            in
            e, dir)
          s.Ast.order_by
      in
      let sorted = if order_keys = [] then base else Plan.sort order_keys base in
      let items =
        List.concat_map
          (fun item ->
            match item with
            | Ast.S_star ->
              List.concat_map
                (fun ((_, schema, offset) as src) ->
                  List.mapi
                    (fun i (c : Schema.column) ->
                      Expr.Col (offset + i), qualified_name src c)
                    (Array.to_list schema.Schema.columns))
                env.sources
            | Ast.S_expr (e, alias) ->
              let name =
                match alias, e with
                | Some a, _ -> a
                | None, Ast.E_col (_, n) -> n
                | None, _ -> Pretty.expr_to_string e
              in
              [ translate_expr cat env e, name ])
          s.Ast.items
      in
      Plan.project items sorted
    end
    else begin
      (* Aggregation: every item must be a GROUP BY expression or an
         aggregate call. *)
      let group_exprs = List.map (translate_expr cat env) s.Ast.group_by in
      let aggs = ref [] in
      let translate_agg f args name =
        let agg =
          match f, args with
          | "count", [ Ast.E_star ] -> Plan.Count_star
          | "count", [ a ] -> Plan.Count (translate_expr cat env a)
          | "sum", [ a ] -> Plan.Sum (translate_expr cat env a)
          | "avg", [ a ] -> Plan.Avg (translate_expr cat env a)
          | "min", [ a ] -> Plan.Min (translate_expr cat env a)
          | "max", [ a ] -> Plan.Max (translate_expr cat env a)
          | _ ->
            Errors.fail
              (Errors.Parse_error ("malformed aggregate call " ^ f))
        in
        aggs := !aggs @ [ agg, name ];
        List.length !aggs - 1
      in
      let n_groups = List.length group_exprs in
      let items =
        List.map
          (fun item ->
            match item with
            | Ast.S_star ->
              Errors.fail
                (Errors.Parse_error "* cannot appear in an aggregate query")
            | Ast.S_expr (Ast.E_func (f, args), alias) when is_aggregate_name f ->
              let name = Option.value ~default:f alias in
              let j = translate_agg f args name in
              Expr.Col (n_groups + j), name
            | Ast.S_expr (e, alias) -> (
              let te = translate_expr cat env e in
              let position =
                List.find_index (fun g -> g = te) group_exprs
              in
              match position with
              | Some i ->
                let name =
                  match alias, e with
                  | Some a, _ -> a
                  | None, Ast.E_col (_, n) -> n
                  | None, _ -> Pretty.expr_to_string e
                in
                Expr.Col i, name
              | None ->
                Errors.fail
                  (Errors.Parse_error
                     ("select item " ^ Pretty.expr_to_string e
                    ^ " is neither grouped nor aggregated"))))
          s.Ast.items
      in
      let agg_plan = Plan.aggregate ~group_by:group_exprs ~aggs:!aggs base in
      let projected = Plan.project items agg_plan in
      (* ORDER BY against the projected output, by alias or position. *)
      let out_schema = projected.Plan.schema in
      let order_keys =
        List.map
          (fun (e, dir) ->
            let e =
              match e with
              | Ast.E_lit (Value.Int k) when k >= 1 && k <= List.length items ->
                Expr.Col (k - 1)
              | Ast.E_col (None, n) -> (
                match Schema.find_column out_schema n with
                | Some i -> Expr.Col i
                | None -> Errors.fail (Errors.No_such_column n))
              | _ ->
                Errors.fail
                  (Errors.Parse_error
                     "ORDER BY in aggregate queries must name an output \
                      column or position")
            in
            e, dir)
          s.Ast.order_by
      in
      (* HAVING over the projected output (by alias/name or position). *)
      let projected =
        match s.Ast.having with
        | None -> projected
        | Some h ->
          let resolve q n =
            match q with
            | Some _ -> None
            | None -> Schema.find_column out_schema n
          in
          let translated =
            Expr.resolve resolve
              (translate_expr cat
                 { sources = [ "", out_schema, 0 ] }
                 h)
          in
          Plan.filter translated projected
      in
      if order_keys = [] then projected else Plan.sort order_keys projected
    end
  in
  (if s.Ast.having <> None && not grouped then
     Errors.fail
       (Errors.Parse_error "HAVING requires GROUP BY or aggregation"));
  let plan = if s.Ast.distinct then Plan.distinct plan else plan in
  let plan =
    match s.Ast.limit with None -> plan | Some n -> Plan.limit n plan
  in
  match s.Ast.setop with
  | None -> plan
  | Some (kind, all, rhs) -> Plan.set_op kind ~all plan (compile_select cat rhs)

(** Resolve an AST expression against a single table (UPDATE/DELETE). *)
let expr_for_table cat table (e : Ast.expr) =
  let env = env_of_schemas [ Table.name table, Table.schema table ] in
  translate_expr cat env e

(** Evaluate a constant AST expression (VALUES rows). *)
let constant_expr cat (e : Ast.expr) =
  let env = { sources = [] } in
  let te = translate_expr cat env e in
  Expr.eval [||] te
