(** Abstract syntax for the Youtopia SQL dialect.

    The dialect is standard SQL (a practical subset) extended with the
    entangled-query constructs of the paper:
    - [INTO ANSWER R] head clauses (a query's contribution to answer
      relation [R]);
    - [(e1, …, en) IN ANSWER R] answer constraints in WHERE;
    - [THEN <effect>] fulfilment effects (DML run inside the joint
      fulfilment transaction, referencing the query's coordination
      variables);
    - a trailing [CHOOSE k] clause.

    JOIN … ON is normalised by the parser into the FROM list plus a WHERE
    conjunct, so the AST has a single flat source list. *)

open Relational

type expr =
  | E_lit of Value.t
  | E_param of int  (** positional [?] parameter (0-based), bound by {!Prepared} *)
  | E_col of string option * string  (** qualifier, name *)
  | E_neg of expr
  | E_not of expr
  | E_is_null of expr * bool  (** [IS NULL] when [bool] is true, else [IS NOT NULL] *)
  | E_bin of Expr.binop * expr * expr
  | E_in_values of expr * expr list  (** [e IN (v1, …, vn)] *)
  | E_in_select of expr list * bool * select
      (** [(e…) [NOT] IN (SELECT …)]; the bool is the NOT *)
  | E_in_answer of expr list * string  (** [(e…) IN ANSWER R] *)
  | E_like of expr * expr * bool  (** [e [NOT] LIKE pattern]; bool = NOT *)
  | E_func of string * expr list  (** function / aggregate call *)
  | E_star  (** only valid inside COUNT(...) with a star, or as a select item *)
  | E_tuple of expr list
      (** transient tuple literal; only legal as the left-hand side of IN
          (e.g. [('Jerry', fno) IN ANSWER Reservation]) or as an entangled
          head tuple *)

and select_item = S_star | S_expr of expr * string option  (** expr, alias *)

and from_source =
  | F_table of string
  | F_subquery of select  (** derived table: FROM (SELECT …) alias *)

and from_item = { f_source : from_source; f_alias : string option }

(** Fulfilment effects ([THEN …] clauses of an entangled SELECT): DML
    executed inside the joint fulfilment transaction, atomically with the
    answer-tuple inserts.  Expressions may reference the query's
    coordination variables (bare column names), which are ground by the
    match's substitution at fulfilment time. *)
and fulfilment_effect =
  | Fx_insert of string * expr list
      (** [THEN INSERT INTO t VALUES (e, …)] *)
  | Fx_update of {
      fx_table : string;
      fx_set : (string * expr) list;
      fx_where : (string * expr) list;  (** conjunction of [col = term] *)
    }  (** [THEN UPDATE t SET c = e, … WHERE c = e AND …] *)
  | Fx_decrement of {
      fx_table : string;
      fx_column : string;
      fx_where : (string * expr) list;
    }
      (** [THEN DECREMENT t.c WHERE c = e AND …] — decrement the {i stored}
          column by one (capacity consumption; [UPDATE SET] cannot express
          this because its right-hand sides range over coordination
          variables, not current column values) *)

and select = {
  distinct : bool;
  items : select_item list;
  into_answer : (expr list * string) list;
      (** entangled heads: tuple INTO ANSWER name; empty for plain SQL *)
  from : from_item list;
  left_joins : (from_item * expr) list;
      (** LEFT [OUTER] JOIN … ON …, applied in order after the inner FROM *)
  where : expr option;
  fulfilment : fulfilment_effect list;
      (** [THEN …] effects; only meaningful with [into_answer] heads *)
  group_by : expr list;
  having : expr option;
  order_by : (expr * Plan.order) list;
  limit : int option;
  choose : int option;  (** CHOOSE k; None for plain SQL *)
  setop : (Plan.set_kind * bool * select) option;
      (** trailing UNION / INTERSECT / EXCEPT [ALL]; the bool is ALL *)
}

type column_def = {
  c_name : string;
  c_type : Ctype.t;
  c_nullable : bool;
  c_primary : bool;  (** column-level PRIMARY KEY *)
}

type statement =
  | Create_table of {
      t_name : string;
      t_columns : column_def list;
      t_primary_key : string list;  (** table-level PRIMARY KEY (…) *)
    }
  | Create_table_as of { cta_name : string; cta_query : select }
      (** CREATE TABLE name AS SELECT … *)
  | Create_view of { v_name : string; v_query : select }
  | Drop_view of string
  | Drop_table of string
  | Create_index of {
      i_name : string;
      i_table : string;
      i_columns : string list;
      i_unique : bool;
    }
  | Insert of {
      in_table : string;
      in_columns : string list option;
      in_rows : expr list list;  (** VALUES rows; empty when [in_select] *)
      in_select : select option;  (** INSERT INTO … SELECT … *)
    }
  | Select of select
  | Update of { u_table : string; u_sets : (string * expr) list; u_where : expr option }
  | Delete of { d_table : string; d_where : expr option }
  | Explain of statement
  | Explain_analyze of select  (** execute + per-operator row counts *)
  | Analyze of string  (** table statistics report *)
  | Show_tables
  | Show_pending  (** admin: list pending entangled queries *)
  | Begin_txn
  | Commit_txn
  | Rollback_txn

(** True when the statement is an entangled query (has INTO ANSWER heads). *)
let is_entangled = function
  | Select s -> s.into_answer <> []
  | _ -> false

(** True when the statement touches no table data, no pending store and no
    session transaction state — safe under a shared engine lock, and safe
    to serve from a read replica.  SELECT INTO ANSWER is a coordinator
    submission (exclusive); ANALYZE and the transaction controls mutate
    engine state; EXPLAIN only plans.  The server uses this to route
    scripts to the shared lock, and the client to route them to replicas —
    both sides must agree on the same predicate. *)
let read_only = function
  | Select s -> s.into_answer = []
  | Explain _ | Explain_analyze _ | Show_tables | Show_pending -> true
  | _ -> false

let empty_select =
  {
    distinct = false;
    items = [];
    into_answer = [];
    from = [];
    left_joins = [];
    where = None;
    fulfilment = [];
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    choose = None;
    setop = None;
  }
