(** Prepared statements: parse once, execute many times with positional
    [?] parameters.

    Binding is purely syntactic — every [E_param i] is replaced by the i-th
    value as a literal before compilation — so prepared statements work for
    plain SQL and for entangled queries alike (bind, then hand the statement
    to the coordinator via [Core.Translate]). *)

open Relational

type t = { statement : Ast.statement; n_params : int; text : string }

let prepare text =
  let statement, n_params = Parser.parse_prepared text in
  { statement; n_params; text }

let n_params t = t.n_params
let text t = t.text

let rec bind_expr params (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.E_param i -> Ast.E_lit params.(i)
  | Ast.E_lit _ | Ast.E_col _ | Ast.E_star -> e
  | Ast.E_neg a -> Ast.E_neg (bind_expr params a)
  | Ast.E_not a -> Ast.E_not (bind_expr params a)
  | Ast.E_is_null (a, b) -> Ast.E_is_null (bind_expr params a, b)
  | Ast.E_bin (op, a, b) -> Ast.E_bin (op, bind_expr params a, bind_expr params b)
  | Ast.E_in_values (a, vs) ->
    Ast.E_in_values (bind_expr params a, List.map (bind_expr params) vs)
  | Ast.E_in_select (es, negated, sub) ->
    Ast.E_in_select (List.map (bind_expr params) es, negated, bind_select params sub)
  | Ast.E_in_answer (es, rel) ->
    Ast.E_in_answer (List.map (bind_expr params) es, rel)
  | Ast.E_like (a, b, negated) ->
    Ast.E_like (bind_expr params a, bind_expr params b, negated)
  | Ast.E_func (f, args) -> Ast.E_func (f, List.map (bind_expr params) args)
  | Ast.E_tuple es -> Ast.E_tuple (List.map (bind_expr params) es)

and bind_select params (s : Ast.select) : Ast.select =
  {
    s with
    Ast.items =
      List.map
        (function
          | Ast.S_star -> Ast.S_star
          | Ast.S_expr (e, a) -> Ast.S_expr (bind_expr params e, a))
        s.Ast.items;
    into_answer =
      List.map
        (fun (es, rel) -> List.map (bind_expr params) es, rel)
        s.Ast.into_answer;
    from =
      List.map
        (fun (f : Ast.from_item) ->
          match f.Ast.f_source with
          | Ast.F_table _ -> f
          | Ast.F_subquery sub ->
            { f with Ast.f_source = Ast.F_subquery (bind_select params sub) })
        s.Ast.from;
    left_joins =
      List.map
        (fun ((f : Ast.from_item), on) ->
          let f =
            match f.Ast.f_source with
            | Ast.F_table _ -> f
            | Ast.F_subquery sub ->
              { f with Ast.f_source = Ast.F_subquery (bind_select params sub) }
          in
          f, bind_expr params on)
        s.Ast.left_joins;
    where = Option.map (bind_expr params) s.Ast.where;
    fulfilment =
      List.map
        (fun (fx : Ast.fulfilment_effect) ->
          let pins = List.map (fun (c, e) -> c, bind_expr params e) in
          match fx with
          | Ast.Fx_insert (table, es) ->
            Ast.Fx_insert (table, List.map (bind_expr params) es)
          | Ast.Fx_update { fx_table; fx_set; fx_where } ->
            Ast.Fx_update
              { fx_table; fx_set = pins fx_set; fx_where = pins fx_where }
          | Ast.Fx_decrement { fx_table; fx_column; fx_where } ->
            Ast.Fx_decrement { fx_table; fx_column; fx_where = pins fx_where })
        s.Ast.fulfilment;
    group_by = List.map (bind_expr params) s.Ast.group_by;
    having = Option.map (bind_expr params) s.Ast.having;
    order_by = List.map (fun (e, d) -> bind_expr params e, d) s.Ast.order_by;
    setop =
      Option.map
        (fun (k, all, rhs) -> k, all, bind_select params rhs)
        s.Ast.setop;
  }

let bind_statement params (st : Ast.statement) : Ast.statement =
  match st with
  | Ast.Select s -> Ast.Select (bind_select params s)
  | Ast.Insert { in_table; in_columns; in_rows; in_select } ->
    Ast.Insert
      {
        in_table;
        in_columns;
        in_rows = List.map (List.map (bind_expr params)) in_rows;
        in_select = Option.map (bind_select params) in_select;
      }
  | Ast.Create_table_as { cta_name; cta_query } ->
    Ast.Create_table_as { cta_name; cta_query = bind_select params cta_query }
  | Ast.Update { u_table; u_sets; u_where } ->
    Ast.Update
      {
        u_table;
        u_sets = List.map (fun (c, e) -> c, bind_expr params e) u_sets;
        u_where = Option.map (bind_expr params) u_where;
      }
  | Ast.Delete { d_table; d_where } ->
    Ast.Delete { d_table; d_where = Option.map (bind_expr params) d_where }
  | Ast.Explain_analyze s -> Ast.Explain_analyze (bind_select params s)
  | st -> st

(** [bind t values] — the statement with every parameter substituted. *)
let bind t values =
  if List.length values <> t.n_params then
    Errors.fail
      (Errors.Parse_error
         (Printf.sprintf "statement has %d parameter(s), %d value(s) given"
            t.n_params (List.length values)));
  bind_statement (Array.of_list values) t.statement

(** [exec session t values] — bind and run a plain prepared statement. *)
let exec session t values = Run.exec session (bind t values)
