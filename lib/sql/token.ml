(** Lexical tokens. *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** unquoted identifier or non-reserved keyword *)
  | KW of string  (** reserved keyword, uppercased *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | SEMI
  | EQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | CONCAT  (** || *)
  | QMARK  (** positional parameter in prepared statements *)
  | EOF

(** Reserved words of the dialect (uppercase). *)
let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "INTO"; "ANSWER"; "CHOOSE"; "AND"; "OR"; "NOT";
    "IN"; "IS"; "NULL"; "TRUE"; "FALSE"; "AS"; "DISTINCT"; "GROUP"; "BY";
    "ORDER"; "ASC"; "DESC"; "LIMIT"; "CREATE"; "TABLE"; "DROP"; "INDEX";
    "UNIQUE"; "ON"; "PRIMARY"; "KEY"; "INSERT"; "VALUES"; "UPDATE"; "SET";
    "DELETE"; "JOIN"; "INNER"; "CROSS"; "BEGIN"; "COMMIT"; "ROLLBACK";
    "EXPLAIN"; "SHOW"; "TABLES"; "PENDING"; "HAVING"; "LEFT"; "OUTER";
    "UNION"; "INTERSECT"; "EXCEPT"; "ALL"; "BETWEEN"; "LIKE"; "VIEW";
    "ANALYZE"; "THEN"; "DECREMENT";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | IDENT s -> s
  | KW s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | SEMI -> ";"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CONCAT -> "||"
  | QMARK -> "?"
  | EOF -> "<eof>"
