(** Client sessions.

    A session belongs to a user (the [owner] of the entangled queries it
    submits), carries the interactive-transaction state for plain SQL, and
    owns a mailbox of asynchronous notifications — answers to entangled
    queries arrive whenever the match completes, which may be long after
    submission (the demo delivers them as Facebook messages; here they queue
    in the mailbox). *)

type t = {
  user : string;
  sql : Sql.Run.session;
  mailbox : Core.Events.notification Queue.t;
  mu : Mutex.t;
  mutable listener : (Core.Events.notification -> unit) option;
}

let create db user =
  {
    user;
    sql = Sql.Run.make_session db;
    mailbox = Queue.create ();
    mu = Mutex.create ();
    listener = None;
  }

let user t = t.user

let deliver t notification =
  Mutex.lock t.mu;
  let listener = t.listener in
  (match listener with
  | None -> Queue.push notification t.mailbox
  | Some _ -> ());
  Mutex.unlock t.mu;
  match listener with None -> () | Some f -> f notification

(** [set_listener t l] — route notifications to [l] instead of the mailbox
    (the network server pushes them to the owning connection).  Anything
    already queued is flushed to the listener so nothing is stranded. *)
let set_listener t listener =
  Mutex.lock t.mu;
  t.listener <- listener;
  let backlog =
    match listener with
    | None -> []
    | Some _ ->
      let out = List.of_seq (Queue.to_seq t.mailbox) in
      Queue.clear t.mailbox;
      out
  in
  Mutex.unlock t.mu;
  match listener with
  | None -> ()
  | Some f -> List.iter f backlog

(** [drain t] removes and returns all queued notifications, oldest first. *)
let drain t =
  Mutex.lock t.mu;
  let out = List.of_seq (Queue.to_seq t.mailbox) in
  Queue.clear t.mailbox;
  Mutex.unlock t.mu;
  out

(** [peek_count t] — queued notifications without draining. *)
let peek_count t =
  Mutex.lock t.mu;
  let n = Queue.length t.mailbox in
  Mutex.unlock t.mu;
  n
