(** The Youtopia system facade — the whole of Figure 2 in one handle.

    Ties together the regular database (catalog + transactions + optional
    WAL), the query compiler, the execution engine, and the coordination
    component.  SQL text arrives through a {!Session.t}; plain statements go
    to the execution engine, entangled statements to the coordinator, and
    coordination answers are delivered asynchronously to the owning
    session's mailbox. *)

open Relational

type t

val create :
  ?config:Core.Coordinator.config ->
  ?wal_path:string ->
  ?durability:Wal.durability ->
  unit ->
  t
(** [durability] selects the WAL commit durability mode (default
    {!Wal.Flush_per_commit}); ignored without [wal_path]. *)

val recover :
  ?config:Core.Coordinator.config ->
  ?durability:Wal.durability ->
  wal_path:string ->
  answer_relations:string list ->
  unit ->
  t
(** Rebuild a system from a write-ahead log: regular tables AND answer
    relations are replayed, then the named answer relations are
    re-registered with the coordinator.  Pending entangled queries are not
    durable — unanswered requests are re-submitted by their owners after a
    crash. *)

val database : t -> Database.t
val catalog : t -> Catalog.t
val coordinator : t -> Core.Coordinator.t

val checkpoint : ?truncate_wal:bool -> ?keep:int -> t -> int * string
(** Snapshot the database at the WAL's current LSN; returns
    [(lsn, snapshot_path)].  The caller must exclude concurrent writers
    (the network server runs this under its exclusive engine lock).
    Raises [Wal_error] without an attached WAL.  See
    {!Database.checkpoint}. *)

val session : t -> string -> Session.t
(** Create and register a session for the user; the session's mailbox
    receives that user's coordination answers. *)

val close_session : t -> Session.t -> unit
(** Unregister a session: its mailbox stops receiving coordination
    answers.  Used by the network server when a connection closes. *)

val declare_answer_relation : t -> Schema.t -> unit

(** Result of submitting one statement. *)
type response =
  | Sql of Sql.Run.result  (** plain SQL executed by the execution engine *)
  | Coordination of Core.Coordinator.outcome  (** entangled query *)
  | Pending_listing of string  (** SHOW PENDING *)

val response_to_string : response -> string

val exec : t -> Session.t -> Sql.Ast.statement -> response
val exec_sql : t -> Session.t -> string -> response
val exec_script : t -> Session.t -> string -> response list

val submit_equery : t -> Session.t -> Core.Equery.t -> Core.Coordinator.outcome
(** Submit a pre-built entangled query (the middle-tier path); the session
    user becomes the owner. *)

val poke : t -> Core.Events.notification list
(** Retry pending coordinations after database updates. *)

val poke_batch : t -> statements:int -> Core.Events.notification list
(** One poke amortising a whole write batch of [statements] DML
    statements; see {!Core.Coordinator.poke_batch}. *)
