(** The Youtopia system facade — the whole of Figure 2 in one handle.

    Ties together the regular database (catalog + transactions + optional
    WAL), the query compiler, the execution engine, and the coordination
    component.  SQL text arrives through a {!Session.t}; plain statements go
    to the execution engine, entangled statements to the coordinator, and
    coordination answers are delivered asynchronously to the owning
    session's mailbox. *)

open Relational

type t = {
  db : Database.t;
  coordinator : Core.Coordinator.t;
  mutable sessions : Session.t list;
  mu : Mutex.t;
}

let create ?(config = Core.Coordinator.default_config) ?wal_path ?durability () =
  let db = Database.create () in
  (match wal_path with
  | None -> ()
  | Some path -> Database.attach_wal ?durability db path);
  let coordinator = Core.Coordinator.create ~config db in
  let t = { db; coordinator; sessions = []; mu = Mutex.create () } in
  (* Route every notification to the mailbox of the owner's session(s). *)
  Core.Coordinator.subscribe coordinator (fun n ->
      List.iter
        (fun session ->
          if Session.user session = n.Core.Events.owner then
            Session.deliver session n)
        t.sessions);
  t

(** [recover ?config ~wal_path ~answer_relations ()] rebuilds a system from
    a write-ahead log: the regular tables AND the answer relations are
    replayed (answer relations are ordinary logged tables), then the named
    answer relations are re-registered with the coordinator.  Pending
    entangled queries are *not* durable — the demo semantics is that
    unanswered requests are re-submitted by their owners after a crash. *)
let recover ?(config = Core.Coordinator.default_config) ?durability ~wal_path
    ~answer_relations () =
  let db = Database.recover ?durability wal_path in
  let coordinator = Core.Coordinator.create ~config db in
  List.iter
    (fun rel -> Core.Coordinator.adopt_answer_relation coordinator rel)
    answer_relations;
  let t = { db; coordinator; sessions = []; mu = Mutex.create () } in
  Core.Coordinator.subscribe coordinator (fun n ->
      List.iter
        (fun session ->
          if Session.user session = n.Core.Events.owner then
            Session.deliver session n)
        t.sessions);
  t

let database t = t.db
let catalog t = t.db.Database.catalog
let coordinator t = t.coordinator

(** [checkpoint t] — snapshot the database at the WAL's current LSN (see
    {!Database.checkpoint}); the caller must exclude concurrent writers. *)
let checkpoint ?truncate_wal ?keep t =
  Database.checkpoint ?truncate_wal ?keep t.db

(** [session t user] — create and register a session for [user]. *)
let session t user =
  Mutex.lock t.mu;
  let s = Session.create t.db user in
  t.sessions <- s :: t.sessions;
  Mutex.unlock t.mu;
  s

(** [close_session t s] — unregister a session so notifications stop being
    routed to it (network connections close; in-process sessions usually
    live as long as the system). *)
let close_session t s =
  Mutex.lock t.mu;
  t.sessions <- List.filter (fun s' -> s' != s) t.sessions;
  Mutex.unlock t.mu

let declare_answer_relation t schema =
  Core.Coordinator.declare_answer_relation t.coordinator schema

(** Result of submitting one statement. *)
type response =
  | Sql of Sql.Run.result  (** plain SQL executed by the execution engine *)
  | Coordination of Core.Coordinator.outcome  (** entangled query *)
  | Pending_listing of string  (** SHOW PENDING *)

let response_to_string = function
  | Sql r -> Sql.Run.result_to_string r
  | Coordination (Core.Coordinator.Rejected m) -> "rejected: " ^ m
  | Coordination (Core.Coordinator.Answered n) ->
    Core.Events.notification_to_string n
  | Coordination (Core.Coordinator.Registered id) ->
    Printf.sprintf "query registered as Q%d; waiting for coordination partners" id
  | Coordination (Core.Coordinator.Multi outcomes) ->
    Printf.sprintf "%d instances submitted" (List.length outcomes)
  | Pending_listing s -> s

(** [exec t session stmt] — route one parsed statement. *)
let exec t (session : Session.t) (stmt : Sql.Ast.statement) : response =
  match stmt with
  | Sql.Ast.Select s when s.Sql.Ast.into_answer <> [] ->
    let q =
      Core.Translate.of_select (catalog t)
        ~owner:(Session.user session)
        ~label:(Sql.Pretty.select_to_string s)
        s
    in
    let outcome = Core.Coordinator.submit t.coordinator q in
    Coordination outcome
  | Sql.Ast.Show_pending ->
    Pending_listing
      (Fmt.str "%a" Core.Pending.pp (Core.Coordinator.pending t.coordinator))
  | stmt -> Sql (Sql.Run.exec session.Session.sql stmt)

(** [exec_sql t session text] — parse and route one statement of SQL text. *)
let exec_sql t session text = exec t session (Sql.Parser.parse_one text)

(** [exec_script t session text] — run a [;]-separated script, returning
    every response in order. *)
let exec_script t session text =
  List.map (exec t session) (Sql.Parser.parse_script text)

(** [submit_equery t session q] — submit a pre-built entangled query (the
    middle-tier path used by the travel application). *)
let submit_equery t (session : Session.t) (q : Core.Equery.t) =
  Core.Coordinator.submit t.coordinator
    { q with Core.Equery.owner = Session.user session }

(** [poke t] — retry pending coordinations after database updates. *)
let poke t = Core.Coordinator.poke t.coordinator

(** [poke_batch t ~statements] — one poke amortising a whole write batch
    (see {!Core.Coordinator.poke_batch}). *)
let poke_batch t ~statements =
  Core.Coordinator.poke_batch ~statements t.coordinator
