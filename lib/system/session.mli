(** Client sessions.

    A session belongs to a user (the [owner] of the entangled queries it
    submits), carries the interactive-transaction state for plain SQL, and
    owns a mailbox of asynchronous notifications — answers to entangled
    queries arrive whenever the match completes, which may be long after
    submission (the demo delivers them as Facebook messages; here they
    queue in the mailbox). *)

type t = {
  user : string;
  sql : Sql.Run.session;
  mailbox : Core.Events.notification Queue.t;
  mu : Mutex.t;
  mutable listener : (Core.Events.notification -> unit) option;
}

val create : Relational.Database.t -> string -> t
val user : t -> string

val deliver : t -> Core.Events.notification -> unit

val set_listener : t -> (Core.Events.notification -> unit) option -> unit
(** Route notifications to the callback instead of the mailbox — the
    network server uses this to push answers to the owning connection the
    moment a group is fulfilled.  Queued notifications are flushed to the
    listener on installation; [None] restores mailbox queueing. *)

val drain : t -> Core.Events.notification list
(** Remove and return all queued notifications, oldest first. *)

val peek_count : t -> int
