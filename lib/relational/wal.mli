(** Redo-only write-ahead log with configurable commit durability.

    The transaction manager appends one batch of redo records per committed
    transaction, terminated by a commit marker.  How hard the log then
    pushes those bytes toward disk is the {!durability} mode:

    {ul
    {- [Never] — records stay in the channel buffer until close.  Fastest;
       a crash loses everything since the last incidental flush.}
    {- [Flush_per_commit] — one [flush] per commit (the historical
       default).  This only moves bytes into the {e kernel} page cache: it
       survives a process crash but {b not} an OS crash or power loss —
       there is no [fsync].}
    {- [Fsync_per_commit] — one [flush] + one [fsync] per commit.  Full
       single-commit durability at the cost of a disk round-trip per
       transaction.  An [fsync] failure raises [Wal_error] at the
       committing caller — never silently ignored.}
    {- [Group _] — group commit: a dedicated flusher thread coalesces every
       commit that arrives within [max_delay_us] (or until [max_batch]
       commits are pending) into {e one} buffered write + {e one} [fsync];
       commit acks block only until their batch's flush completes.  An
       [fsync] failure is sticky: the waiting commits and every later
       commit fail loudly.}}

    Recovery replays every {i complete} batch into a fresh catalog; a torn
    {i batch} tail — any run of undecodable or commit-less trailing lines
    after the last commit marker, which group commit can now produce — is
    discarded, and {!truncate_torn_tail} physically removes it before the
    log is reopened for append.

    Every commit-terminated batch carries a monotone {e log sequence
    number} (LSN): batch [n] of the database's history has LSN [n],
    counted from 1 and preserved across reopen.  {!truncate_prefix} cuts
    the already-checkpointed prefix, leaving an [Lsn_base] marker that
    records the cut position; such a log can only be replayed on top of a
    checkpoint at or past that LSN (see {!Checkpoint}).

    The format is line-oriented text; field values are percent-escaped so
    separators and newlines never appear raw. *)

type record =
  | Create_table of Schema.t
  | Drop_table of string
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t
  | Update of string * Tuple.t * Tuple.t
  | Commit of int
  | Lsn_base of int
      (** first line of a prefix-truncated log: the LSN of the last batch
          cut away; the next batch in the file has this LSN + 1 *)

(** {1 Durability} *)

type durability =
  | Never  (** buffer only; no flush at commit *)
  | Flush_per_commit
      (** flush to the OS per commit — {b no} crash durability (no fsync) *)
  | Fsync_per_commit  (** flush + fsync per commit *)
  | Group of { max_batch : int; max_delay_us : int }
      (** group commit: one flush + one fsync per batch of concurrent
          commits, closed after [max_batch] commits or [max_delay_us] *)

val durability_to_string : durability -> string

val durability_of_string : string -> durability option
(** Accepts ["never"], ["flush"], ["fsync"], ["group"] (defaults 32
    commits / 2000 µs) and ["group(<max_batch>,<max_delay_us>)"]. *)

type io_stats = {
  commits_logged : int;  (** committed batches appended *)
  flushes : int;  (** channel flushes performed *)
  fsyncs : int;  (** fsyncs performed *)
  group_batches : int;  (** flusher batches written *)
  group_commits : int;  (** commits coalesced into those batches *)
  batched_scopes : int;  (** {!with_batch} scopes entered *)
  batched_commits : int;  (** commits deferred inside those scopes *)
}

(** {1 Codecs} (exposed for tests) *)

val escape : string -> string

(** [unescape s] is total on arbitrary input: a malformed percent-escape
    (truncated or non-hex) is kept literally instead of raising, so torn
    WAL tails and hostile wire payloads decode deterministically. *)
val unescape : string -> string
val encode_value : Value.t -> string
val decode_value : string -> Value.t
val encode_tuple : Tuple.t -> string
val decode_tuple : string -> Tuple.t
val encode_schema : Schema.t -> string
val decode_schema : string -> Schema.t
val encode_record : record -> string
val decode_record : string -> record

(** {1 Log handle} *)

type t

val open_log : ?durability:durability -> string -> t
(** Opens for append, creating the file if needed.  [durability] defaults
    to [Flush_per_commit]; [Group] starts the flusher thread. *)

val durability : t -> durability

val set_durability : t -> durability -> unit
(** Switching into [Group] starts the flusher; switching out stops it
    (after draining pending commits). *)

val io_stats : t -> io_stats

val reset_io_stats : t -> unit
(** Zero the io counters — called when a freshly recovered database
    attaches, so recovery replay and answer-relation re-creation don't
    pollute bench/admin deltas. *)

val path : t -> string

val last_lsn : t -> int
(** LSN of the last commit-terminated batch appended (0 on a fresh log);
    initialised from the file contents on {!open_log}. *)

val base_lsn : t -> int
(** LSN position at which this log file starts: 0 unless
    {!truncate_prefix} cut an already-checkpointed prefix. *)

val set_on_append : t -> (lsn:int -> record list -> unit) option -> unit
(** Shipping hook for replication: called with every complete batch
    (records followed by the commit marker) as it reaches the log, in
    strict LSN order, while the log's internal lock is held — the hook
    must only enqueue and must never call back into the log.  Unlike
    {!Txn.add_observer} this also sees auto-committed DDL, which bypasses
    the transaction manager. *)

val append : t -> record list -> unit
(** Raw append + flush (deferred inside {!with_batch}); used for DDL and by
    tests.  Does not fsync. *)

val append_commit : t -> txn_id:int -> record list -> unit
(** One committed batch: the records followed by a commit marker; blocks
    until the batch is as durable as the current mode promises. *)

val durable_append_commit : t -> txn_id:int -> record list -> int * (unit -> unit)
(** Like {!append_commit} but returns the batch's assigned LSN and the
    durability wait as a closure so the caller can release its locks
    first — required for group commit to coalesce anything (see
    {!Txn.set_on_commit}). *)

val sync : t -> unit
(** Force one flush + one fsync of everything appended so far.  Raises
    [Wal_error] on a closed log or fsync failure. *)

val with_batch : t -> (unit -> 'a) -> 'a
(** Defer every flush/fsync inside the scope; at scope end (even on
    exception) perform one mode-appropriate sync covering all deferred
    commits.  The server's write-batching drainer wraps each batch in this
    so a batch costs one flush (+ one fsync in the fsync modes) total.
    Scopes do not nest. *)

val crash : t -> unit
(** Simulate the process dying with the log open: close the fd {i without}
    flushing, so bytes still buffered in the channel never reach the file
    — exactly what SIGKILL does to them.  The handle is unusable
    afterwards; recover by reopening the path.  For fault-injection
    tests. *)

val close : t -> unit
(** Stops the flusher (draining pending commits), flushes, fsyncs in the
    fsync modes, and closes the file. *)

(** {1 Recovery} *)

val read_records : string -> record list
(** Tolerates a torn batch tail: undecodable lines strictly after the last
    commit marker are dropped; an undecodable line at-or-before it is real
    corruption and fails loudly. *)

val replay : string -> Catalog.t
(** Rebuild a catalog from the log, applying only complete
    (commit-terminated) batches.  Raises [Wal_error] on a prefix-truncated
    log: its full history only exists on top of a checkpoint. *)

val apply_record : Catalog.t -> record -> unit
(** Apply one redo record to a live catalog ([Commit]/[Lsn_base] are
    no-ops).  Raises [Wal_error] when a delete/update finds no victim row
    — the catalog has diverged from the log. *)

val apply_batches : Catalog.t -> record list -> int * int
(** Apply every complete (commit-terminated) batch; trailing records
    without a commit marker are discarded.  Returns [(batches, records)]
    applied.  A replica applies shipped batches with this. *)

val replay_into : Catalog.t -> string -> after_lsn:int -> int * int
(** Apply to the given catalog only the complete batches with LSN >
    [after_lsn] — the WAL suffix past a checkpoint.  Raises [Wal_error]
    when the log's prefix was truncated beyond [after_lsn].  Returns
    [(batches, records)] applied. *)

val truncate_torn_tail : string -> bool
(** Physically truncate the log to the end of its last complete batch
    (returns [true] if bytes were removed).  Must run before reopening a
    recovered log for append: otherwise the next batch is written directly
    after the torn fragment and stale pre-crash bytes merge into a
    committed batch. *)

val truncate_prefix : t -> upto_lsn:int -> unit
(** Rewrite the live log without the batches at or below [upto_lsn],
    leaving an [Lsn_base] marker followed by the surviving suffix.  Only
    meaningful right after a checkpoint at [upto_lsn]; raises [Wal_error]
    for an LSN outside [base_lsn, last_lsn] or inside a batch scope. *)

val records_of_ops : Txn.op list -> record list

val attach : t -> Txn.manager -> unit
(** Wire a transaction manager's commit hook to the log. *)
