(** Redo-only write-ahead log.

    The transaction manager appends one batch of redo records per committed
    transaction, terminated by a commit marker, and flushes.  Recovery
    replays every {i complete} batch into a fresh catalog; a trailing batch
    without its commit marker (torn write) is discarded.

    The format is line-oriented text; field values are percent-escaped so
    separators and newlines never appear raw. *)

type record =
  | Create_table of Schema.t
  | Drop_table of string
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t
  | Update of string * Tuple.t * Tuple.t
  | Commit of int

(** {1 Codecs} (exposed for tests) *)

val escape : string -> string

(** [unescape s] is total on arbitrary input: a malformed percent-escape
    (truncated or non-hex) is kept literally instead of raising, so torn
    WAL tails and hostile wire payloads decode deterministically. *)
val unescape : string -> string
val encode_value : Value.t -> string
val decode_value : string -> Value.t
val encode_tuple : Tuple.t -> string
val decode_tuple : string -> Tuple.t
val encode_schema : Schema.t -> string
val decode_schema : string -> Schema.t
val encode_record : record -> string
val decode_record : string -> record

(** {1 Log handle} *)

type t

val open_log : string -> t
(** Opens for append, creating the file if needed. *)

val append : t -> record list -> unit
val append_commit : t -> txn_id:int -> record list -> unit
(** One committed batch: the records followed by a commit marker. *)

val close : t -> unit

(** {1 Recovery} *)

val read_records : string -> record list

val replay : string -> Catalog.t
(** Rebuild a catalog from the log, applying only complete
    (commit-terminated) batches. *)

val records_of_ops : Txn.op list -> record list

val attach : t -> Txn.manager -> unit
(** Wire a transaction manager's commit hook to the log. *)
