(** Redo-only write-ahead log.

    The transaction manager appends one batch of redo records per committed
    transaction, terminated by a commit marker, and flushes.  Recovery
    replays every *complete* batch into a fresh catalog; a trailing batch
    without its commit marker (torn write) is discarded.

    The format is line-oriented and text-based:
    {v
      S|<schema>          create table
      X|<name>            drop table
      I|<table>|<tuple>   insert
      D|<table>|<tuple>   delete (by full tuple)
      U|<table>|<old>|<new>
      C|<txn id>          commit marker
      L|<lsn>             base marker: the log starts after this LSN
    v}
    Field values are percent-escaped so [|] and newlines never appear raw.

    Every commit-terminated batch carries a monotone {e log sequence
    number} (LSN): batch [n] of the database's history has LSN [n],
    counted from 1.  A log whose pre-checkpoint prefix was truncated
    starts with an [L|<lsn>] base marker recording how many batches were
    cut; replay of such a log is only possible on top of a checkpoint at
    or past that LSN. *)

type record =
  | Create_table of Schema.t
  | Drop_table of string
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t
  | Update of string * Tuple.t * Tuple.t
  | Commit of int
  | Lsn_base of int

(* ---------------- escaping ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '|' -> Buffer.add_string buf "%7C"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | ';' -> Buffer.add_string buf "%3B"
      | ',' -> Buffer.add_string buf "%2C"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n && hex_digit s.[i + 1] >= 0
            && hex_digit s.[i + 2] >= 0 then begin
      Buffer.add_char buf (Char.chr ((hex_digit s.[i + 1] * 16) + hex_digit s.[i + 2]));
      loop (i + 3)
    end
    else begin
      (* not a well-formed escape (truncated, or non-hex as in "%zz"):
         keep the bytes literally so decoding is total on any input —
         both WAL recovery and the wire decoder feed this untrusted data *)
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

(* ---------------- value / tuple / schema codecs ---------------- *)

(* Decoders run on torn log tails and on wire payloads from peers, so a
   malformed field must surface as [Wal_error] — never as the stdlib's
   [Failure]/[Invalid_argument] from int/float/bool_of_string. *)
let codec_guard what f s =
  try f s with
  | Failure _ | Invalid_argument _ ->
    Errors.fail (Errors.Wal_error (Printf.sprintf "unparsable %s: %s" what s))

let encode_value = function
  | Value.Null -> "n"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> "f" ^ string_of_float f
  | Value.Bool b -> "b" ^ string_of_bool b
  | Value.Str s -> "s" ^ escape s

let decode_value_exn s =
  if s = "" then Errors.fail (Errors.Wal_error "empty value field");
  let body = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'n' -> Value.Null
  | 'i' -> Value.Int (int_of_string body)
  | 'f' -> Value.Float (float_of_string body)
  | 'b' -> Value.Bool (bool_of_string body)
  | 's' -> Value.Str (unescape body)
  | c -> Errors.fail (Errors.Wal_error (Printf.sprintf "bad value tag %c" c))

let decode_value s = codec_guard "value" decode_value_exn s

let encode_tuple (t : Tuple.t) =
  String.concat "," (List.map encode_value (Tuple.to_list t))

let decode_tuple s : Tuple.t =
  if s = "" then [||]
  else Tuple.of_list (List.map decode_value (String.split_on_char ',' s))

let encode_schema (s : Schema.t) =
  let col (c : Schema.column) =
    Printf.sprintf "%s:%s:%b" (escape c.Schema.col_name)
      (Ctype.to_string c.Schema.col_type)
      c.Schema.nullable
  in
  Printf.sprintf "%s;%s;%s" (escape s.Schema.name)
    (String.concat "," (List.map string_of_int s.Schema.primary_key))
    (String.concat ";" (List.map col (Array.to_list s.Schema.columns)))

let decode_schema_exn s =
  match String.split_on_char ';' s with
  | name :: pk :: cols ->
    let primary_key =
      if pk = "" then []
      else List.map int_of_string (String.split_on_char ',' pk)
    in
    let column c =
      match String.split_on_char ':' c with
      | [ n; ty; nul ] ->
        let col_type =
          match Ctype.of_string ty with
          | Some t -> t
          | None -> Errors.fail (Errors.Wal_error ("bad column type " ^ ty))
        in
        Schema.column ~nullable:(bool_of_string nul) (unescape n) col_type
      | _ -> Errors.fail (Errors.Wal_error ("bad column spec " ^ c))
    in
    Schema.make ~primary_key (unescape name) (List.map column cols)
  | _ -> Errors.fail (Errors.Wal_error ("bad schema record " ^ s))

let decode_schema s = codec_guard "schema" decode_schema_exn s

(* ---------------- record codec ---------------- *)

let encode_record = function
  | Create_table s -> "S|" ^ encode_schema s
  | Drop_table n -> "X|" ^ escape n
  | Insert (t, row) -> Printf.sprintf "I|%s|%s" (escape t) (encode_tuple row)
  | Delete (t, row) -> Printf.sprintf "D|%s|%s" (escape t) (encode_tuple row)
  | Update (t, o, n) ->
    Printf.sprintf "U|%s|%s|%s" (escape t) (encode_tuple o) (encode_tuple n)
  | Commit id -> "C|" ^ string_of_int id
  | Lsn_base lsn -> "L|" ^ string_of_int lsn

let decode_record_exn line =
  match String.split_on_char '|' line with
  | [ "S"; s ] -> Create_table (decode_schema s)
  | [ "X"; n ] -> Drop_table (unescape n)
  | [ "I"; t; row ] -> Insert (unescape t, decode_tuple row)
  | [ "D"; t; row ] -> Delete (unescape t, decode_tuple row)
  | [ "U"; t; o; n ] -> Update (unescape t, decode_tuple o, decode_tuple n)
  | [ "C"; id ] -> Commit (int_of_string id)
  | [ "L"; lsn ] -> Lsn_base (int_of_string lsn)
  | _ -> Errors.fail (Errors.Wal_error ("unparsable record: " ^ line))

let decode_record line = codec_guard "record" decode_record_exn line

(* ---------------- durability ---------------- *)

type durability =
  | Never
  | Flush_per_commit
  | Fsync_per_commit
  | Group of { max_batch : int; max_delay_us : int }

let durability_to_string = function
  | Never -> "never"
  | Flush_per_commit -> "flush"
  | Fsync_per_commit -> "fsync"
  | Group { max_batch; max_delay_us } ->
    Printf.sprintf "group(%d,%dus)" max_batch max_delay_us

let durability_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "never" -> Some Never
  | "flush" -> Some Flush_per_commit
  | "fsync" -> Some Fsync_per_commit
  | "group" -> Some (Group { max_batch = 32; max_delay_us = 2000 })
  | s ->
    (match String.index_opt s '(' with
    | Some i when String.length s > 0 && s.[String.length s - 1] = ')'
                  && String.sub s 0 i = "group" ->
      let body = String.sub s (i + 1) (String.length s - i - 2) in
      (match String.split_on_char ',' body with
      | [ b; d ] ->
        let d =
          let d = String.trim d in
          if String.length d > 2 && String.sub d (String.length d - 2) 2 = "us"
          then String.sub d 0 (String.length d - 2)
          else d
        in
        (try
           Some
             (Group
                {
                  max_batch = int_of_string (String.trim b);
                  max_delay_us = int_of_string d;
                })
         with _ -> None)
      | _ -> None)
    | _ -> None)

type io_stats = {
  commits_logged : int;
  flushes : int;
  fsyncs : int;
  group_batches : int;
  group_commits : int;
  batched_scopes : int;
  batched_commits : int;
}

(* ---------------- log handle ---------------- *)

type t = {
  path : string;
  mutable oc : out_channel option;
  mu : Mutex.t;
      (* guards [oc] writes, durability, counters and flusher state below *)
  mutable durability : durability;
  (* io counters (under [mu]) *)
  mutable commits_logged : int;
  mutable flushes : int;
  mutable fsyncs : int;
  mutable group_batches : int;
  mutable group_commits : int;
  mutable batched_scopes : int;
  mutable batched_commits : int;
  (* group-commit flusher *)
  work_cond : Condition.t;  (* a commit joined the pending group *)
  flush_cond : Condition.t;  (* the pending group reached disk *)
  mutable enqueued_gen : int;  (* commits appended, awaiting group flush *)
  mutable flushed_gen : int;  (* commits made durable *)
  mutable flusher : Thread.t option;
  mutable flusher_stop : bool;
  mutable flusher_error : exn option;
      (* sticky: once the log failed to reach disk, every later commit
         must fail loudly rather than pretend durability *)
  (* deferred-sync batch scope, see [with_batch] *)
  mutable deferring : bool;
  mutable deferred_dirty : bool;
  (* log sequence numbers (under [mu]) *)
  mutable base_lsn : int;  (** batches truncated away before this log's start *)
  mutable last_lsn : int;  (** LSN of the last commit-terminated batch *)
  mutable on_append : (lsn:int -> record list -> unit) option;
      (** shipping hook: called under [mu] with each complete batch
          (records + commit marker) as it reaches the log, in strict LSN
          order.  Must not call back into the log. *)
  mutable pending_ship : record list;
      (** records appended since the last commit marker, newest first;
          they join the next batch handed to [on_append] *)
}

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> Errors.fail (Errors.Wal_error ("log closed: " ^ t.path))

(* flush and/or fsync under [mu]; fsync failures become Wal_error *)
let do_flush t =
  Fault.point "wal.flush";
  flush (channel t);
  t.flushes <- t.flushes + 1

let do_fsync t =
  Fault.point "wal.fsync";
  let oc = channel t in
  (try Unix.fsync (Unix.descr_of_out_channel oc)
   with Unix.Unix_error (e, _, _) ->
     Errors.fail
       (Errors.Wal_error
          (Printf.sprintf "fsync %s: %s" t.path (Unix.error_message e))));
  t.fsyncs <- t.fsyncs + 1

(* ---------------- group-commit flusher ---------------- *)

(* OCaml has no Condition timedwait, so the flusher holds the group window
   open by sleeping in short slices with [mu] released, then performs one
   flush + one fsync for every commit that joined meanwhile. *)
let flusher_loop t =
  Mutex.lock t.mu;
  let rec loop () =
    if t.flusher_stop then begin
      (* drain anything still pending so [close] never strands a waiter *)
      if t.enqueued_gen > t.flushed_gen && t.flusher_error = None then begin
        (try
           do_flush t;
           do_fsync t
         with e -> t.flusher_error <- Some e);
        t.flushed_gen <- t.enqueued_gen
      end;
      Condition.broadcast t.flush_cond;
      Mutex.unlock t.mu
    end
    else if t.enqueued_gen = t.flushed_gen then begin
      Condition.wait t.work_cond t.mu;
      loop ()
    end
    else begin
      let max_batch, max_delay_us =
        match t.durability with
        | Group { max_batch; max_delay_us } -> (max 1 max_batch, max 0 max_delay_us)
        | _ -> (1, 0)
      in
      let deadline = Unix.gettimeofday () +. (float_of_int max_delay_us /. 1e6) in
      let slice = Float.min 2e-4 (Float.max 5e-5 (float_of_int max_delay_us /. 1e6 /. 4.)) in
      let rec gather () =
        if
          (not t.flusher_stop)
          && t.enqueued_gen - t.flushed_gen < max_batch
          && Unix.gettimeofday () < deadline
        then begin
          Mutex.unlock t.mu;
          Thread.delay slice;
          Mutex.lock t.mu;
          gather ()
        end
      in
      gather ();
      let target = t.enqueued_gen in
      (match
         do_flush t;
         do_fsync t
       with
      | () ->
        t.group_batches <- t.group_batches + 1;
        t.group_commits <- t.group_commits + (target - t.flushed_gen)
      | exception e -> t.flusher_error <- Some e);
      (* advance even on error: waiters check [flusher_error] on wake *)
      t.flushed_gen <- target;
      Condition.broadcast t.flush_cond;
      loop ()
    end
  in
  loop ()

(* call with [mu] held *)
let ensure_flusher t =
  match t.durability, t.flusher with
  | Group _, None ->
    t.flusher_stop <- false;
    t.flusher <- Some (Thread.create flusher_loop t)
  | _ -> ()

(* call with [mu] NOT held *)
let stop_flusher t =
  let joinee =
    Mutex.lock t.mu;
    let th = t.flusher in
    t.flusher_stop <- true;
    t.flusher <- None;
    Condition.signal t.work_cond;
    Mutex.unlock t.mu;
    th
  in
  match joinee with None -> () | Some th -> Thread.join th

(* Scan an existing log for its LSN position without building a catalog:
   base from a leading [Lsn_base] line (written by prefix truncation), plus
   one LSN per decodable commit marker.  A torn tail is cut from the end of
   a single buffered batch write, so its commit marker (the last line) is
   never complete — torn tails cannot inflate the count. *)
let scan_lsns path =
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let ic = open_in path in
    let base = ref 0 and commits = ref 0 and first = ref true in
    (try
       while true do
         let line = input_line ic in
         if line <> "" then begin
           (match decode_record line with
           | Lsn_base n -> if !first then base := n
           | Commit _ -> incr commits
           | _ -> ()
           | exception _ -> ());
           first := false
         end
       done
     with End_of_file -> close_in ic);
    (!base, !base + !commits)
  end

let open_log ?(durability = Flush_per_commit) path =
  let base_lsn, last_lsn = scan_lsns path in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let t =
    {
      path;
      oc = Some oc;
      mu = Mutex.create ();
      durability;
      commits_logged = 0;
      flushes = 0;
      fsyncs = 0;
      group_batches = 0;
      group_commits = 0;
      batched_scopes = 0;
      batched_commits = 0;
      work_cond = Condition.create ();
      flush_cond = Condition.create ();
      enqueued_gen = 0;
      flushed_gen = 0;
      flusher = None;
      flusher_stop = false;
      flusher_error = None;
      deferring = false;
      deferred_dirty = false;
      base_lsn;
      last_lsn;
      on_append = None;
      pending_ship = [];
    }
  in
  Mutex.lock t.mu;
  ensure_flusher t;
  Mutex.unlock t.mu;
  t

let durability t =
  Mutex.lock t.mu;
  let d = t.durability in
  Mutex.unlock t.mu;
  d

let set_durability t d =
  let was_group =
    Mutex.lock t.mu;
    let wg = match t.durability with Group _ -> true | _ -> false in
    t.durability <- d;
    (match d with Group _ -> ensure_flusher t | _ -> ());
    Mutex.unlock t.mu;
    wg
  in
  match d with
  | Group _ -> ()
  | _ -> if was_group then stop_flusher t

let io_stats t =
  Mutex.lock t.mu;
  let s =
    {
      commits_logged = t.commits_logged;
      flushes = t.flushes;
      fsyncs = t.fsyncs;
      group_batches = t.group_batches;
      group_commits = t.group_commits;
      batched_scopes = t.batched_scopes;
      batched_commits = t.batched_commits;
    }
  in
  Mutex.unlock t.mu;
  s

(** [reset_io_stats t] zeroes the io counters.  Recovery replay and
    re-creation of answer relations go through the same log, so a freshly
    recovered database would otherwise start life with their flushes
    already on the meter — bench and admin deltas must start from zero. *)
let reset_io_stats t =
  Mutex.lock t.mu;
  t.commits_logged <- 0;
  t.flushes <- 0;
  t.fsyncs <- 0;
  t.group_batches <- 0;
  t.group_commits <- 0;
  t.batched_scopes <- 0;
  t.batched_commits <- 0;
  Mutex.unlock t.mu

let path t = t.path

let last_lsn t =
  Mutex.lock t.mu;
  let n = t.last_lsn in
  Mutex.unlock t.mu;
  n

let base_lsn t =
  Mutex.lock t.mu;
  let n = t.base_lsn in
  Mutex.unlock t.mu;
  n

let set_on_append t hook =
  Mutex.lock t.mu;
  t.on_append <- hook;
  Mutex.unlock t.mu

(* [mu] held.  Slice newly written records into commit-terminated batches,
   assign each the next LSN, and hand complete batches to the shipping
   hook; records not yet commit-terminated wait in [pending_ship]. *)
let note_appended t records =
  List.iter
    (fun r ->
      match r with
      | Commit _ ->
        t.last_lsn <- t.last_lsn + 1;
        let batch = List.rev (r :: t.pending_ship) in
        t.pending_ship <- [];
        (match t.on_append with
        | Some hook -> hook ~lsn:t.last_lsn batch
        | None -> ())
      | Lsn_base _ -> ()
      | r -> t.pending_ship <- r :: t.pending_ship)
    records

let write_records t records =
  (* [mu] held by caller *)
  let oc = channel t in
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf (encode_record r);
      Buffer.add_char buf '\n')
    records;
  let payload = Buffer.contents buf in
  match Fault.cut "wal.append" ~len:(String.length payload) with
  | None -> output_string oc payload
  | Some n ->
    (* a write torn at byte [n]: the prefix reaches the file (flushed past
       the channel buffer so the torn bytes really land), the rest never
       does.  The handle is poisoned exactly as a real torn write poisons
       a log — recover by reopening the path after [truncate_torn_tail]. *)
    output_string oc (String.sub payload 0 n);
    (try flush oc with Sys_error _ -> ());
    raise
      (Fault.Injected
         ( "wal.append",
           Printf.sprintf "write torn at byte %d/%d" n (String.length payload)
         ))

let append t records =
  Mutex.lock t.mu;
  (match
     write_records t records;
     note_appended t records;
     if t.deferring then t.deferred_dirty <- true else do_flush t
   with
  | () -> Mutex.unlock t.mu
  | exception e ->
    Mutex.unlock t.mu;
    raise e)

(** [sync t] forces everything appended so far onto disk: one flush + one
    fsync.  Raises [Wal_error] on a closed log or an fsync failure. *)
let sync t =
  Mutex.lock t.mu;
  (match
     do_flush t;
     do_fsync t
   with
  | () -> Mutex.unlock t.mu
  | exception e ->
    Mutex.unlock t.mu;
    raise e)

let raise_sticky t =
  (* [mu] held *)
  match t.flusher_error with
  | Some e ->
    Mutex.unlock t.mu;
    raise e
  | None -> ()

let wait_flushed t gen =
  Mutex.lock t.mu;
  while t.flushed_gen < gen && t.flusher_error = None do
    Condition.wait t.flush_cond t.mu
  done;
  let err = t.flusher_error in
  Mutex.unlock t.mu;
  match err with Some e -> raise e | None -> ()

(** [durable_append_commit t ~txn_id records] appends one committed batch
    (records + commit marker), assigns it the next LSN, and returns that
    LSN with a wait closure that blocks until the batch is as durable as
    the current mode promises.  The closure must be called {i after}
    releasing any lock held across the append — that is what lets
    concurrent commits coalesce into one group flush. *)
let durable_append_commit t ~txn_id records =
  Mutex.lock t.mu;
  (match Fault.point "wal.commit" with
  | () -> ()
  | exception e ->
    Mutex.unlock t.mu;
    raise e);
  raise_sticky t;
  match
    write_records t records;
    write_records t [ Commit txn_id ];
    note_appended t (records @ [ Commit txn_id ]);
    let lsn = t.last_lsn in
    t.commits_logged <- t.commits_logged + 1;
    if t.deferring then begin
      (* inside a batch scope: the scope end performs the single
         mode-appropriate sync for every commit deferred here *)
      t.deferred_dirty <- true;
      t.batched_commits <- t.batched_commits + 1;
      `Done lsn
    end
    else begin
      match t.durability with
      | Never -> `Done lsn
      | Flush_per_commit ->
        do_flush t;
        `Done lsn
      | Fsync_per_commit ->
        do_flush t;
        do_fsync t;
        `Done lsn
      | Group _ ->
        t.enqueued_gen <- t.enqueued_gen + 1;
        Condition.signal t.work_cond;
        `Wait (lsn, t.enqueued_gen)
    end
  with
  | `Done lsn ->
    Mutex.unlock t.mu;
    (lsn, fun () -> ())
  | `Wait (lsn, gen) ->
    Mutex.unlock t.mu;
    (lsn, fun () -> wait_flushed t gen)
  | exception e ->
    (* the append may have left a torn line at the tail.  Recovery
       truncates a torn *tail*, but a later append would bury the tear
       mid-file and corrupt the log — so poison it: every subsequent
       commit re-raises this error instead of appending. *)
    t.flusher_error <- Some e;
    Mutex.unlock t.mu;
    raise e

(** Append one committed batch and block until it is durable (legacy
    blocking form of {!durable_append_commit}). *)
let append_commit t ~txn_id records =
  (snd (durable_append_commit t ~txn_id records)) ()

(** [with_batch t f] defers every flush/fsync inside [f] and performs one
    mode-appropriate sync at scope end (even if [f] raises): commits made
    within the scope share a single flush — and a single fsync in the fsync
    modes.  Scopes do not nest. *)
let with_batch t f =
  Mutex.lock t.mu;
  if t.deferring then begin
    Mutex.unlock t.mu;
    Errors.fail (Errors.Wal_error "nested WAL batch scope")
  end;
  raise_sticky t;
  t.deferring <- true;
  t.deferred_dirty <- false;
  t.batched_scopes <- t.batched_scopes + 1;
  Mutex.unlock t.mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.mu;
      t.deferring <- false;
      let dirty = t.deferred_dirty in
      t.deferred_dirty <- false;
      match
        if dirty then begin
          match t.durability with
          | Never -> ()
          | Flush_per_commit -> do_flush t
          | Fsync_per_commit | Group _ ->
            do_flush t;
            do_fsync t
        end
      with
      | () -> Mutex.unlock t.mu
      | exception e ->
        Mutex.unlock t.mu;
        raise e)
    f

(** [crash t] simulates the process dying with the log open: the fd is
    closed {i without} flushing, so bytes still buffered in the channel
    never reach the file — exactly what SIGKILL does to them.  The handle
    is unusable afterwards; recover by reopening the path. *)
let crash t =
  Mutex.lock t.mu;
  (match t.oc with
  | None -> ()
  | Some oc ->
    (try Unix.close (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> ());
    t.oc <- None);
  Mutex.unlock t.mu;
  (* the flusher's final drain now fails against the closed fd and parks
     in [flusher_error] instead of rescuing the buffered bytes *)
  stop_flusher t

let close t =
  stop_flusher t;
  Mutex.lock t.mu;
  match t.oc with
  | None -> Mutex.unlock t.mu
  | Some oc ->
    let fin =
      try
        flush oc;
        (match t.durability with
        | Fsync_per_commit | Group _ -> do_fsync t
        | Never | Flush_per_commit -> ());
        None
      with e -> Some e
    in
    close_out_noerr oc;
    t.oc <- None;
    Mutex.unlock t.mu;
    (match fin with Some e -> raise e | None -> ())

(* ---------------- recovery ---------------- *)

let read_records path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec read_lines acc =
      match input_line ic with
      | line -> read_lines (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    let lines = read_lines [] in
    (* Decode every line once; remember where the last decodable commit
       marker sits.  Group commit writes a whole multi-record batch in one
       buffered write, so a torn tail can now span several lines — any
       undecodable line strictly AFTER the last commit marker belongs to a
       batch that has no commit marker and would be discarded anyway.  An
       undecodable line at-or-before the last commit marker sits inside a
       batch that claims to be complete: real corruption, fail loudly. *)
    let decoded =
      List.map
        (fun line ->
          if line = "" then `Blank
          else
            match decode_record line with
            | r -> `Ok r
            | exception (Errors.Db_error _ | Failure _ | Invalid_argument _)
              ->
              (* a torn line can fail anywhere in decoding — framing, value
                 parsing, or schema validation of a truncated [T|] record *)
              `Bad line)
        lines
    in
    let last_commit = ref (-1) in
    List.iteri
      (fun i d -> match d with `Ok (Commit _) -> last_commit := i | _ -> ())
      decoded;
    decoded
    |> List.mapi (fun i d -> (i, d))
    |> List.filter_map (fun (i, d) ->
           match d with
           | `Blank -> None
           | `Ok r -> Some r
           | `Bad line ->
             if i > !last_commit then None
             else Errors.fail (Errors.Wal_error ("unparsable record: " ^ line)))
  end

(** [truncate_torn_tail path] chops the log back to the end of its last
    complete (commit-terminated) batch, returning [true] if bytes were
    removed.  {!read_records} already ignores a torn tail when replaying,
    but an append-mode reopen would otherwise write the next batch directly
    after the torn fragment, merging stale pre-crash bytes into a committed
    batch — so recovery must physically truncate before appending. *)
let truncate_torn_tail path =
  if not (Sys.file_exists path) then false
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let keep = ref 0 in
    (* byte offset just past the last commit-marker line *)
    let keep_missing_nl = ref false in
    (* that line was complete but had no trailing newline *)
    let pos = ref 0 in
    let buf = Buffer.create 256 in
    while !pos < len do
      Buffer.clear buf;
      let rec line () =
        if !pos >= len then false
        else begin
          let c = input_char ic in
          incr pos;
          if c = '\n' then true
          else begin
            Buffer.add_char buf c;
            line ()
          end
        end
      in
      let had_nl = line () in
      (match decode_record (Buffer.contents buf) with
      | Commit _ | Lsn_base _ ->
        (* a base marker is batch-like for truncation: a freshly
           prefix-truncated log is a lone [L|<lsn>] line, and chopping it
           off would silently reset the log's LSN origin *)
        keep := !pos;
        keep_missing_nl := not had_nl
      | _ -> ()
      | exception _ -> ())
    done;
    close_in ic;
    let truncated = !keep < len in
    if truncated then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> Unix.ftruncate fd !keep)
    end;
    (* if the surviving tail is a commit line cut exactly at its newline,
       re-add the newline so the next append starts on a fresh line *)
    if !keep > 0 && !keep_missing_nl then begin
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_char oc '\n';
      close_out oc
    end;
    truncated
  end

(* Locate the row a redo Update/Delete names.  With a primary key the
   victim is one index probe; a full scan (for keyless tables, or if the
   probe surfaces a row that does not match the logged image) would make
   replay quadratic in table size — and a replica re-applies every
   shipped update through this path, so the probe also keeps a read
   replica from stalling its readers behind O(n) applies. *)
let find_victim table row =
  let pk = (Table.schema table).Schema.primary_key in
  let by_scan () =
    Table.fold
      (fun acc row_id r -> if acc = None && Tuple.equal r row then Some row_id else acc)
      None table
  in
  if pk = [] then by_scan ()
  else
    match Table.lookup_pk table (Array.of_list (List.map (Array.get row) pk)) with
    | Some row_id when Tuple.equal (Table.get_exn table row_id) row -> Some row_id
    | Some _ | None -> by_scan ()

(** [apply_record cat r] applies one redo record to a live catalog.  Used
    by recovery replay and by a replica applying shipped batches. *)
let apply_record cat = function
  | Create_table s -> ignore (Catalog.create_table cat s)
  | Drop_table n -> Catalog.drop_table cat n
  | Insert (t, row) -> ignore (Table.insert (Catalog.find cat t) row)
  | Delete (t, row) ->
    let table = Catalog.find cat t in
    (match find_victim table row with
    | Some row_id -> ignore (Table.delete table row_id)
    | None ->
      Errors.fail
        (Errors.Wal_error
           (Printf.sprintf "replay: delete of absent row in %s" t)))
  | Update (t, old_row, new_row) ->
    let table = Catalog.find cat t in
    (match find_victim table old_row with
    | Some row_id -> ignore (Table.update table row_id new_row)
    | None ->
      Errors.fail
        (Errors.Wal_error
           (Printf.sprintf "replay: update of absent row in %s" t)))
  | Commit _ | Lsn_base _ -> ()

(** [apply_batches cat records] applies every complete (commit-terminated)
    batch to [cat]; trailing records without a commit marker are discarded.
    Returns [(batches, records)] applied. *)
let apply_batches cat records =
  let n_batches = ref 0 and n_records = ref 0 in
  let rec go pending = function
    | [] -> ()  (* trailing records without commit marker: discarded *)
    | Commit _ :: rest ->
      List.iter
        (fun r ->
          apply_record cat r;
          incr n_records)
        (List.rev pending);
      incr n_batches;
      go [] rest
    | Lsn_base _ :: rest -> go pending rest
    | r :: rest -> go (r :: pending) rest
  in
  go [] records;
  (!n_batches, !n_records)

let records_base = function Lsn_base n :: _ -> n | _ -> 0

(** [replay_into cat path ~after_lsn] applies to [cat] only the complete
    batches whose LSN exceeds [after_lsn] — the WAL suffix past a
    checkpoint.  Fails loudly when the log's prefix was truncated beyond
    [after_lsn]: the missing batches are unrecoverable without a newer
    snapshot.  Returns [(batches, records)] applied. *)
let replay_into cat path ~after_lsn =
  let records = read_records path in
  let base = records_base records in
  if after_lsn < base then
    Errors.fail
      (Errors.Wal_error
         (Printf.sprintf
            "%s starts at lsn %d (prefix truncated): cannot replay from lsn %d"
            path base after_lsn));
  (* drop the batches the snapshot already contains: batch i (1-based from
     the base marker) has LSN [base + i] *)
  let n_batches = ref 0 and n_records = ref 0 in
  let lsn = ref base in
  let rec go pending = function
    | [] -> ()
    | Commit _ :: rest ->
      incr lsn;
      if !lsn > after_lsn then begin
        List.iter
          (fun r ->
            apply_record cat r;
            incr n_records)
          (List.rev pending);
        incr n_batches
      end;
      go [] rest
    | Lsn_base _ :: rest -> go pending rest
    | r :: rest -> go (r :: pending) rest
  in
  go [] records;
  (!n_batches, !n_records)

(** [replay path] rebuilds a catalog from the log, applying only complete
    (commit-terminated) batches.  Fails loudly on a prefix-truncated log —
    its full history only exists on top of a checkpoint (see
    {!Checkpoint} and {!replay_into}). *)
let replay path =
  let cat = Catalog.create () in
  ignore (replay_into cat path ~after_lsn:0);
  cat

(** [truncate_prefix t ~upto_lsn] rewrites the live log without the
    batches at or below [upto_lsn], leaving an [L|<upto_lsn>] base marker
    followed by the surviving suffix (including any trailing records not
    yet commit-terminated).  Called after a checkpoint at [upto_lsn]:
    recovery then needs the snapshot plus only this suffix — but full
    replay of a truncated log is impossible, so keep a valid snapshot. *)
let truncate_prefix t ~upto_lsn =
  Mutex.lock t.mu;
  match
    if t.deferring then
      Errors.fail (Errors.Wal_error "truncate_prefix inside a WAL batch scope");
    if upto_lsn < t.base_lsn || upto_lsn > t.last_lsn then
      Errors.fail
        (Errors.Wal_error
           (Printf.sprintf "truncate_prefix: lsn %d outside [%d, %d]" upto_lsn
              t.base_lsn t.last_lsn));
    do_flush t;
    let records = read_records t.path in
    let base = records_base records in
    let kept =
      let lsn = ref base in
      let out = ref [] in
      let emit rs = List.iter (fun r -> out := r :: !out) rs in
      let rec go pending = function
        | [] -> emit (List.rev pending)
        | (Commit _ as c) :: rest ->
          incr lsn;
          if !lsn > upto_lsn then emit (List.rev (c :: pending));
          go [] rest
        | Lsn_base _ :: rest -> go pending rest
        | r :: rest -> go (r :: pending) rest
      in
      go [] records;
      List.rev !out
    in
    close_out (channel t);
    t.oc <- None;
    let tmp = t.path ^ ".trunc" in
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
    List.iter
      (fun r ->
        output_string oc (encode_record r);
        output_char oc '\n')
      (Lsn_base upto_lsn :: kept);
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    Sys.rename tmp t.path;
    t.oc <- Some (open_out_gen [ Open_append ] 0o644 t.path);
    t.base_lsn <- upto_lsn
  with
  | () -> Mutex.unlock t.mu
  | exception e ->
    Mutex.unlock t.mu;
    raise e

(** Convert a transaction's redo ops (from {!Txn.set_on_commit}) into WAL
    records. *)
let records_of_ops ops =
  List.map
    (fun op ->
      match op with
      | Txn.Ins (table, _, row) -> Insert (Table.name table, row)
      | Txn.Del (table, row) -> Delete (Table.name table, row)
      | Txn.Upd (table, _, old_row, new_row) ->
        Update (Table.name table, old_row, new_row))
    ops

(** [attach wal mgr] wires a transaction manager's commit hook to the log.
    The hook returns the durability wait closure, which {!Txn.commit} runs
    after releasing the manager mutex — in [Group] mode that is what lets
    concurrent commits pile into one flusher batch. *)
let attach t (mgr : Txn.manager) =
  let counter = ref 0 in
  Txn.set_on_commit mgr
    (Some
       (fun ops ->
         incr counter;
         durable_append_commit t ~txn_id:!counter (records_of_ops ops)))
