(** Redo-only write-ahead log.

    The transaction manager appends one batch of redo records per committed
    transaction, terminated by a commit marker, and flushes.  Recovery
    replays every *complete* batch into a fresh catalog; a trailing batch
    without its commit marker (torn write) is discarded.

    The format is line-oriented and text-based:
    {v
      S|<schema>          create table
      X|<name>            drop table
      I|<table>|<tuple>   insert
      D|<table>|<tuple>   delete (by full tuple)
      U|<table>|<old>|<new>
      C|<txn id>          commit marker
    v}
    Field values are percent-escaped so [|] and newlines never appear raw. *)

type record =
  | Create_table of Schema.t
  | Drop_table of string
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t
  | Update of string * Tuple.t * Tuple.t
  | Commit of int

(* ---------------- escaping ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '|' -> Buffer.add_string buf "%7C"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | ';' -> Buffer.add_string buf "%3B"
      | ',' -> Buffer.add_string buf "%2C"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n && hex_digit s.[i + 1] >= 0
            && hex_digit s.[i + 2] >= 0 then begin
      Buffer.add_char buf (Char.chr ((hex_digit s.[i + 1] * 16) + hex_digit s.[i + 2]));
      loop (i + 3)
    end
    else begin
      (* not a well-formed escape (truncated, or non-hex as in "%zz"):
         keep the bytes literally so decoding is total on any input —
         both WAL recovery and the wire decoder feed this untrusted data *)
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

(* ---------------- value / tuple / schema codecs ---------------- *)

let encode_value = function
  | Value.Null -> "n"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> "f" ^ string_of_float f
  | Value.Bool b -> "b" ^ string_of_bool b
  | Value.Str s -> "s" ^ escape s

let decode_value s =
  if s = "" then Errors.fail (Errors.Wal_error "empty value field");
  let body = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'n' -> Value.Null
  | 'i' -> Value.Int (int_of_string body)
  | 'f' -> Value.Float (float_of_string body)
  | 'b' -> Value.Bool (bool_of_string body)
  | 's' -> Value.Str (unescape body)
  | c -> Errors.fail (Errors.Wal_error (Printf.sprintf "bad value tag %c" c))

let encode_tuple (t : Tuple.t) =
  String.concat "," (List.map encode_value (Tuple.to_list t))

let decode_tuple s : Tuple.t =
  if s = "" then [||]
  else Tuple.of_list (List.map decode_value (String.split_on_char ',' s))

let encode_schema (s : Schema.t) =
  let col (c : Schema.column) =
    Printf.sprintf "%s:%s:%b" (escape c.Schema.col_name)
      (Ctype.to_string c.Schema.col_type)
      c.Schema.nullable
  in
  Printf.sprintf "%s;%s;%s" (escape s.Schema.name)
    (String.concat "," (List.map string_of_int s.Schema.primary_key))
    (String.concat ";" (List.map col (Array.to_list s.Schema.columns)))

let decode_schema s =
  match String.split_on_char ';' s with
  | name :: pk :: cols ->
    let primary_key =
      if pk = "" then []
      else List.map int_of_string (String.split_on_char ',' pk)
    in
    let column c =
      match String.split_on_char ':' c with
      | [ n; ty; nul ] ->
        let col_type =
          match Ctype.of_string ty with
          | Some t -> t
          | None -> Errors.fail (Errors.Wal_error ("bad column type " ^ ty))
        in
        Schema.column ~nullable:(bool_of_string nul) (unescape n) col_type
      | _ -> Errors.fail (Errors.Wal_error ("bad column spec " ^ c))
    in
    Schema.make ~primary_key (unescape name) (List.map column cols)
  | _ -> Errors.fail (Errors.Wal_error ("bad schema record " ^ s))

(* ---------------- record codec ---------------- *)

let encode_record = function
  | Create_table s -> "S|" ^ encode_schema s
  | Drop_table n -> "X|" ^ escape n
  | Insert (t, row) -> Printf.sprintf "I|%s|%s" (escape t) (encode_tuple row)
  | Delete (t, row) -> Printf.sprintf "D|%s|%s" (escape t) (encode_tuple row)
  | Update (t, o, n) ->
    Printf.sprintf "U|%s|%s|%s" (escape t) (encode_tuple o) (encode_tuple n)
  | Commit id -> "C|" ^ string_of_int id

let decode_record line =
  match String.split_on_char '|' line with
  | [ "S"; s ] -> Create_table (decode_schema s)
  | [ "X"; n ] -> Drop_table (unescape n)
  | [ "I"; t; row ] -> Insert (unescape t, decode_tuple row)
  | [ "D"; t; row ] -> Delete (unescape t, decode_tuple row)
  | [ "U"; t; o; n ] -> Update (unescape t, decode_tuple o, decode_tuple n)
  | [ "C"; id ] -> Commit (int_of_string id)
  | _ -> Errors.fail (Errors.Wal_error ("unparsable record: " ^ line))

(* ---------------- log handle ---------------- *)

type t = { path : string; mutable oc : out_channel option }

let open_log path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { path; oc = Some oc }

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> Errors.fail (Errors.Wal_error ("log closed: " ^ t.path))

let append t records =
  let oc = channel t in
  List.iter
    (fun r ->
      output_string oc (encode_record r);
      output_char oc '\n')
    records;
  flush oc

(** Append one committed batch: the records followed by a commit marker. *)
let append_commit t ~txn_id records = append t (records @ [ Commit txn_id ])

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    close_out oc;
    t.oc <- None

(* ---------------- recovery ---------------- *)

let read_records path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec read_lines acc =
      match input_line ic with
      | line -> read_lines (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    let lines = read_lines [] in
    let last = List.length lines - 1 in
    lines
    |> List.mapi (fun i l -> i, l)
    |> List.filter_map (fun (i, line) ->
           if line = "" then None
           else
             match decode_record line with
             | r -> Some r
             | exception
                 ( Errors.Db_error (Errors.Wal_error _)
                 | Failure _ | Invalid_argument _ )
               when i = last ->
               (* A torn write cut the final record mid-line.  Its batch
                  has no commit marker, so it would be discarded anyway —
                  drop the fragment.  An undecodable line anywhere else is
                  real corruption and still fails loudly. *)
               None)
  end

(** [replay path] rebuilds a catalog from the log, applying only complete
    (commit-terminated) batches. *)
let replay path =
  let cat = Catalog.create () in
  let apply = function
    | Create_table s -> ignore (Catalog.create_table cat s)
    | Drop_table n -> Catalog.drop_table cat n
    | Insert (t, row) -> ignore (Table.insert (Catalog.find cat t) row)
    | Delete (t, row) ->
      let table = Catalog.find cat t in
      let victim =
        Table.fold
          (fun acc row_id r -> if Tuple.equal r row && acc = None then Some row_id else acc)
          None table
      in
      (match victim with
      | Some row_id -> ignore (Table.delete table row_id)
      | None ->
        Errors.fail
          (Errors.Wal_error
             (Printf.sprintf "replay: delete of absent row in %s" t)))
    | Update (t, old_row, new_row) ->
      let table = Catalog.find cat t in
      let victim =
        Table.fold
          (fun acc row_id r ->
            if Tuple.equal r old_row && acc = None then Some row_id else acc)
          None table
      in
      (match victim with
      | Some row_id -> ignore (Table.update table row_id new_row)
      | None ->
        Errors.fail
          (Errors.Wal_error
             (Printf.sprintf "replay: update of absent row in %s" t)))
    | Commit _ -> ()
  in
  let rec batches pending = function
    | [] -> ()  (* trailing records without commit marker: discarded *)
    | Commit _ :: rest ->
      List.iter apply (List.rev pending);
      batches [] rest
    | r :: rest -> batches (r :: pending) rest
  in
  batches [] (read_records path);
  cat

(** Convert a transaction's redo ops (from {!Txn.set_on_commit}) into WAL
    records. *)
let records_of_ops ops =
  List.map
    (fun op ->
      match op with
      | Txn.Ins (table, _, row) -> Insert (Table.name table, row)
      | Txn.Del (table, row) -> Delete (Table.name table, row)
      | Txn.Upd (table, _, old_row, new_row) ->
        Update (Table.name table, old_row, new_row))
    ops

(** [attach wal mgr] wires a transaction manager's commit hook to the log. *)
let attach t (mgr : Txn.manager) =
  let counter = ref 0 in
  Txn.set_on_commit mgr
    (Some
       (fun ops ->
         incr counter;
         append_commit t ~txn_id:!counter (records_of_ops ops)))
