(** Transactions.

    Concurrency control is coarse: a manager-wide mutex is held from [begin_]
    to [commit]/[rollback], so transactions execute serially — the strongest
    isolation level, which is what Youtopia's joint fulfilment of a match
    group requires (the demo paper: "in addition to isolation through
    transactions").  Atomicity comes from an undo log replayed on rollback;
    durability (optional) from a redo-only WAL written at commit. *)

type op =
  | Ins of Table.t * int * Tuple.t
  | Del of Table.t * Tuple.t
  | Upd of Table.t * int * Tuple.t * Tuple.t  (** row id, old, new *)

type state = Active | Committed | Aborted

type manager = {
  mutex : Mutex.t;
  mutable next_id : int;
  mutable on_commit : (op list -> int * (unit -> unit)) option;
      (** durability hook; receives the redo log in execution order and
          returns the batch's WAL LSN plus a wait closure that {!commit}
          runs {i after} releasing the manager mutex — group commit can
          only coalesce concurrent transactions if the durability wait
          happens outside the lock *)
  mutable observers : (op list -> unit) list;
      (** commit observers (e.g. the coordinator's dirty-table tracker);
          run after [on_commit], in registration order *)
  mutable lsn_observers : (lsn:int -> op list -> unit) list;
      (** like [observers] but also told the commit's WAL LSN (0 when no
          WAL is attached); run after the plain observers *)
}

type t = {
  id : int;
  mgr : manager;
  mutable undo : op list;  (** most recent first *)
  mutable state : state;
}

let create_manager () =
  {
    mutex = Mutex.create ();
    next_id = 1;
    on_commit = None;
    observers = [];
    lsn_observers = [];
  }

let set_on_commit mgr hook = mgr.on_commit <- hook

(** [add_observer mgr f] — [f] receives every committed transaction's redo
    log (in execution order), after the durability hook.  Observers must not
    start transactions (the manager mutex is still held). *)
let add_observer mgr f = mgr.observers <- mgr.observers @ [ f ]

(** [add_lsn_observer mgr f] — like {!add_observer}, but [f] is also told
    the WAL LSN the commit was assigned (0 without an attached WAL).  Runs
    after the plain observers, same restrictions. *)
let add_lsn_observer mgr f = mgr.lsn_observers <- mgr.lsn_observers @ [ f ]

let begin_ mgr =
  Mutex.lock mgr.mutex;
  let id = mgr.next_id in
  mgr.next_id <- id + 1;
  { id; mgr; undo = []; state = Active }

let id t = t.id

let check_active t =
  match t.state with
  | Active -> ()
  | Committed -> Errors.fail (Errors.Txn_error "transaction already committed")
  | Aborted -> Errors.fail (Errors.Txn_error "transaction already aborted")

(** Transactional mutations: the table change happens immediately; the undo
    log remembers how to reverse it. *)

let insert t table row =
  check_active t;
  let row_id = Table.insert table row in
  let stored = Table.get_exn table row_id in
  t.undo <- Ins (table, row_id, stored) :: t.undo;
  row_id

let delete t table row_id =
  check_active t;
  let old = Table.delete table row_id in
  t.undo <- Del (table, old) :: t.undo;
  old

let update t table row_id row =
  check_active t;
  let old = Table.update table row_id row in
  let stored = Table.get_exn table row_id in
  t.undo <- Upd (table, row_id, old, stored) :: t.undo;
  old

(** {1 Savepoints}

    A savepoint marks a position in the undo log; [rollback_to] undoes every
    operation performed after the mark while keeping the transaction active
    (partial rollback).  Marks are invalidated by a rollback past them. *)

type savepoint = { sp_txn_id : int; sp_depth : int }

let savepoint t =
  check_active t;
  { sp_txn_id = t.id; sp_depth = List.length t.undo }

let rollback_to t (sp : savepoint) =
  check_active t;
  if sp.sp_txn_id <> t.id then
    Errors.fail (Errors.Txn_error "savepoint belongs to another transaction");
  let depth = List.length t.undo in
  if sp.sp_depth > depth then
    Errors.fail (Errors.Txn_error "savepoint no longer valid");
  let to_undo, keep =
    let rec split i acc rest =
      if i = 0 then List.rev acc, rest
      else
        match rest with
        | [] -> List.rev acc, []
        | op :: tail -> split (i - 1) (op :: acc) tail
    in
    split (depth - sp.sp_depth) [] t.undo
  in
  List.iter
    (fun op ->
      match op with
      | Ins (table, row_id, _) -> ignore (Table.delete table row_id)
      | Del (table, old) -> ignore (Table.insert table old)
      | Upd (table, row_id, old, _) -> ignore (Table.update table row_id old))
    to_undo;
  t.undo <- keep

let commit t =
  check_active t;
  (* before the state flips: an injected raise here leaves the transaction
     Active, so [with_txn]'s exception path rolls it back and releases the
     manager mutex *)
  Fault.point "txn.commit";
  t.state <- Committed;
  let wait =
    if t.undo = [] then fun () -> ()
    else begin
      let redo = List.rev t.undo in
      let lsn, wait =
        match
          match t.mgr.on_commit with
          | Some hook -> hook redo
          | None -> (0, fun () -> ())
        with
        | result -> result
        | exception e ->
          (* The durability hook failed before acknowledging anything:
             nothing effective reached the log (a torn tail is truncated
             on recovery), so undo the in-memory changes too — the caller
             sees a clean abort, not a memory/disk split.  The lock must
             not leak either way. *)
          List.iter
            (fun op ->
              match op with
              | Ins (table, row_id, _) -> ignore (Table.delete table row_id)
              | Del (table, old) -> ignore (Table.insert table old)
              | Upd (table, row_id, old, _) ->
                ignore (Table.update table row_id old))
            t.undo;
          t.state <- Aborted;
          Mutex.unlock t.mgr.mutex;
          raise e
      in
      match
        List.iter (fun f -> f redo) t.mgr.observers;
        List.iter (fun f -> f ~lsn redo) t.mgr.lsn_observers
      with
      | () -> wait
      | exception e ->
        (* an observer failed AFTER the commit reached the log: the
           transaction stays committed (recovery would replay it); only
           release the lock and surface the error *)
        Mutex.unlock t.mgr.mutex;
        raise e
    end
  in
  Mutex.unlock t.mgr.mutex;
  (* durability wait outside the manager mutex: the next transaction can
     begin (and append its own commit) while we wait for the group flush *)
  wait ()

let rollback t =
  check_active t;
  List.iter
    (fun op ->
      match op with
      | Ins (table, row_id, _) -> ignore (Table.delete table row_id)
      | Del (table, old) -> ignore (Table.insert table old)
      | Upd (table, row_id, old, _) -> ignore (Table.update table row_id old))
    t.undo;
  t.state <- Aborted;
  Mutex.unlock t.mgr.mutex

(** [with_txn mgr f] runs [f txn] and commits; any exception rolls back and
    re-raises. *)
let with_txn mgr f =
  let txn = begin_ mgr in
  let cleanup () =
    (* [commit] can raise with the transaction still Active (e.g. an
       injected pre-commit fault): roll back so the manager mutex is
       released and the changes are undone.  Committed/Aborted states
       already released the lock themselves. *)
    match txn.state with Active -> rollback txn | Committed | Aborted -> ()
  in
  match f txn with
  | result -> (
    match commit txn with
    | () -> result
    | exception e ->
      cleanup ();
      raise e)
  | exception e ->
    cleanup ();
    raise e
