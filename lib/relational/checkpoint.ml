(** Atomic point-in-time snapshots of a catalog.

    A checkpoint captures every table (schema, version, rows) and view of
    a database at a recorded WAL position, so recovery can load the
    snapshot and replay only the WAL suffix past it instead of the entire
    history.  The format reuses the WAL's line/escape codec:

    {v
      YCHK|1|<lsn>            header: magic, format version, WAL LSN
      T|<version>|<schema>    table (schema as in the WAL's S records)
      R|<table>|<tuple>       one line per row of the preceding tables
      V|<name>|<select sql>   view definition
      E|<tables>|<rows>       footer: counts double as a validity seal
    v}

    A snapshot file is only ever produced by write-to-temp + rename, and
    is only considered valid when the header parses, every line decodes,
    and the footer's counts match — truncation or corruption anywhere
    makes {!load} raise and {!load_latest} fall back to an older snapshot
    (or to full WAL replay).  Files are named [<wal>.ckpt-<lsn>] next to
    the log they belong to. *)

let magic = "YCHK"
let format_version = 1

(* ---------------- encoding ---------------- *)

(** [to_lines ~lsn cat] serialises the catalog in deterministic (sorted)
    table order.  The caller must exclude concurrent writers for the
    snapshot to be a consistent cut. *)
let to_lines ~lsn cat =
  let out = ref [] in
  let add l = out := l :: !out in
  add (Printf.sprintf "%s|%d|%d" magic format_version lsn);
  let n_tables = ref 0 and n_rows = ref 0 in
  List.iter
    (fun name ->
      let table = Catalog.find cat name in
      incr n_tables;
      add
        (Printf.sprintf "T|%d|%s" (Table.version table)
           (Wal.encode_schema (Table.schema table)));
      Table.iter
        (fun _ row ->
          incr n_rows;
          add
            (Printf.sprintf "R|%s|%s" (Wal.escape name) (Wal.encode_tuple row)))
        table)
    (Catalog.table_names cat);
  List.iter
    (fun v ->
      match Catalog.find_view cat v with
      | Some sql ->
        add (Printf.sprintf "V|%s|%s" (Wal.escape v) (Wal.escape sql))
      | None -> ())
    (Catalog.view_names cat);
  add (Printf.sprintf "E|%d|%d" !n_tables !n_rows);
  List.rev !out

(* ---------------- decoding ---------------- *)

let invalid fmt = Printf.ksprintf (fun m -> Errors.fail (Errors.Wal_error m)) fmt

(** [of_lines lines] rebuilds [(lsn, catalog)]; raises [Wal_error] on any
    framing, codec, count, or ordering problem — an invalid snapshot must
    never load partially. *)
let of_lines lines =
  let lsn, body =
    match lines with
    | header :: body -> (
      match String.split_on_char '|' header with
      | [ m; v; lsn ] when m = magic && v = string_of_int format_version -> (
        match int_of_string_opt lsn with
        | Some lsn when lsn >= 0 -> (lsn, body)
        | _ -> invalid "checkpoint: bad header lsn %s" lsn)
      | _ -> invalid "checkpoint: bad header %s" header)
    | [] -> invalid "checkpoint: empty file"
  in
  let cat = Catalog.create () in
  let n_tables = ref 0 and n_rows = ref 0 in
  let versions = ref [] in
  let sealed = ref false in
  List.iter
    (fun line ->
      if !sealed then invalid "checkpoint: data after footer";
      match String.split_on_char '|' line with
      | [ "T"; version; schema ] ->
        let schema = Wal.decode_schema schema in
        let table = Catalog.create_table cat schema in
        (match int_of_string_opt version with
        | Some v when v >= 0 -> versions := (table, v) :: !versions
        | _ -> invalid "checkpoint: bad table version %s" version);
        incr n_tables
      | [ "R"; name; tuple ] ->
        let table = Catalog.find cat (Wal.unescape name) in
        ignore (Table.insert table (Wal.decode_tuple tuple));
        incr n_rows
      | [ "V"; name; sql ] ->
        Catalog.create_view cat (Wal.unescape name) (Wal.unescape sql)
      | [ "E"; tables; rows ] ->
        if
          int_of_string_opt tables <> Some !n_tables
          || int_of_string_opt rows <> Some !n_rows
        then invalid "checkpoint: footer counts do not match contents";
        sealed := true
      | _ -> invalid "checkpoint: unparsable line %s" line)
    body;
  if not !sealed then invalid "checkpoint: missing footer (truncated?)";
  (* only now: every R-line insert bumped its table's version, and the
     recorded value is the table's true mutation count at the checkpoint
     (always >= the live-row count), so restoring after the inserts lands
     exactly on it *)
  List.iter (fun (t, v) -> Table.restore_version t v) !versions;
  (lsn, cat)

(* Decoding hands lines to the WAL/schema codecs, which report their own
   error kinds; a torn file must surface uniformly as [Wal_error] so
   callers (load_latest's fallback, the replica bootstrap) can rely on
   one kind. *)
let of_lines lines =
  try of_lines lines with
  | Errors.Db_error (Errors.Wal_error _) as e -> raise e
  | Errors.Db_error k ->
    invalid "checkpoint: corrupt content (%s)" (Errors.kind_to_string k)

(* ---------------- files ---------------- *)

let path_for ~wal_path ~lsn = Printf.sprintf "%s.ckpt-%d" wal_path lsn

(** Existing snapshot files for this WAL, as [(lsn, path)] newest first. *)
let list ~wal_path =
  let dir = Filename.dirname wal_path in
  let prefix = Filename.basename wal_path ^ ".ckpt-" in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter_map (fun f ->
         if String.length f > String.length prefix
            && String.sub f 0 (String.length prefix) = prefix
         then
           let suffix =
             String.sub f (String.length prefix)
               (String.length f - String.length prefix)
           in
           match int_of_string_opt suffix with
           | Some lsn -> Some (lsn, Filename.concat dir f)
           | None -> None  (* .tmp leftovers and other noise *)
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

(** [write ~wal_path ~lsn cat] writes the snapshot atomically (temp file,
    flush, fsync, rename) and returns its path. *)
let write ~wal_path ~lsn cat =
  Fault.point "checkpoint.write";
  let final = path_for ~wal_path ~lsn in
  let tmp = final ^ ".tmp" in
  let lines = to_lines ~lsn cat in
  (* [checkpoint.lines] models an in-place torn snapshot: write only the
     first [n] lines yet STILL rename into place — deliberately bypassing
     the temp+rename atomicity — so {!load_latest}'s fall-back past an
     invalid newest snapshot is actually exercised. *)
  let lines, torn =
    match Fault.cut "checkpoint.lines" ~len:(List.length lines) with
    | Some n -> (List.filteri (fun i _ -> i < n) lines, true)
    | None -> (lines, false)
  in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
  (match
     List.iter
       (fun line ->
         output_string oc line;
         output_char oc '\n')
       lines;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp final;
  if torn then
    raise (Fault.Injected ("checkpoint.lines", "snapshot torn in place"));
  final

(** [load path] reads one snapshot file; raises [Wal_error] when invalid. *)
let load path =
  let ic = open_in path in
  let lines =
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go [])
  in
  of_lines lines

(** [load_latest ~wal_path] tries snapshots newest-first, skipping invalid
    (torn, corrupt) ones; [None] when no valid snapshot exists. *)
let load_latest ~wal_path =
  let rec try_all = function
    | [] -> None
    | (_, path) :: older -> (
      match load path with
      | lsn, cat -> Some (lsn, cat, path)
      | exception (Errors.Db_error _ | Sys_error _ | Failure _) ->
        try_all older)
  in
  try_all (list ~wal_path)

(** [prune ~wal_path ~keep] deletes all but the newest [keep] snapshots. *)
let prune ~wal_path ~keep =
  list ~wal_path
  |> List.filteri (fun i _ -> i >= keep)
  |> List.iter (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())
