(** Transactions.

    Concurrency control is coarse: a manager-wide mutex is held from
    {!begin_} to {!commit}/{!rollback}, so transactions execute serially —
    the strongest isolation level, which is what Youtopia's joint fulfilment
    of a match group requires.  Atomicity comes from an undo log replayed on
    rollback; durability (optional) from a redo-only WAL written at commit
    (see {!Wal.attach}). *)

type op =
  | Ins of Table.t * int * Tuple.t
  | Del of Table.t * Tuple.t
  | Upd of Table.t * int * Tuple.t * Tuple.t  (** row id, old, new *)

type manager
type t

val create_manager : unit -> manager

val set_on_commit : manager -> (op list -> int * (unit -> unit)) option -> unit
(** Durability hook; receives the redo log in execution order and returns
    the commit's WAL LSN plus a wait closure that {!commit} invokes
    {i after} releasing the manager mutex, so a group-commit flush can
    coalesce concurrent transactions.  Wired by {!Wal.attach}. *)

val add_observer : manager -> (op list -> unit) -> unit
(** Register a commit observer: called with every committed transaction's
    redo log (execution order), after the durability hook.  The
    coordinator's dirty-table tracker uses this.  Observers must not start
    transactions — the manager mutex is still held. *)

val add_lsn_observer : manager -> (lsn:int -> op list -> unit) -> unit
(** Like {!add_observer}, but the observer is also told the WAL LSN the
    commit was assigned (0 without an attached WAL); runs after the plain
    observers, same restrictions. *)

val begin_ : manager -> t
(** Blocks until the manager lock is available. *)

val id : t -> int

val insert : t -> Table.t -> Value.t array -> int
val delete : t -> Table.t -> int -> Tuple.t
val update : t -> Table.t -> int -> Value.t array -> Tuple.t

(** {1 Savepoints} *)

type savepoint

val savepoint : t -> savepoint
(** Mark the current position in the undo log. *)

val rollback_to : t -> savepoint -> unit
(** Undo every operation performed after the mark, newest first; the
    transaction stays active.  Raises [Txn_error] for a savepoint from
    another transaction or one invalidated by an earlier partial
    rollback. *)

val commit : t -> unit
val rollback : t -> unit
(** Undoes every operation of the transaction, newest first. *)

val with_txn : manager -> (t -> 'a) -> 'a
(** Run and commit; any exception rolls back and re-raises. *)
