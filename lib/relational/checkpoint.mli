(** Atomic point-in-time snapshots of a catalog.

    A checkpoint captures every table (schema, version, rows) and view at
    a recorded WAL LSN, so recovery loads the newest valid snapshot and
    replays only the WAL suffix past it (see {!Database.recover}), and a
    replica bootstraps from the same byte format streamed over the wire.

    Snapshot files are written with temp + fsync + rename and validated
    end-to-end on load (header, per-line codec, footer counts): a
    truncated or corrupt snapshot never loads partially — callers fall
    back to an older snapshot or to full WAL replay.  Files live next to
    the log as [<wal>.ckpt-<lsn>].

    Views ride along opportunistically: they are not WAL-logged, so a
    recovery that falls back to full replay loses them while a snapshot
    load preserves them. *)

val to_lines : lsn:int -> Catalog.t -> string list
(** Serialise (deterministic sorted-table order).  The caller must exclude
    concurrent writers for the snapshot to be a consistent cut. *)

val of_lines : string list -> int * Catalog.t
(** Rebuild [(lsn, catalog)]; raises [Wal_error] on any framing, codec,
    count or ordering problem. *)

val path_for : wal_path:string -> lsn:int -> string

val list : wal_path:string -> (int * string) list
(** Existing snapshots for this WAL as [(lsn, path)], newest first. *)

val write : wal_path:string -> lsn:int -> Catalog.t -> string
(** Write atomically (temp file, flush, fsync, rename); returns the
    snapshot's path. *)

val load : string -> int * Catalog.t
(** Read one snapshot file; raises [Wal_error] when invalid. *)

val load_latest : wal_path:string -> (int * Catalog.t * string) option
(** Newest valid snapshot, skipping torn/corrupt ones; [None] when no
    valid snapshot exists. *)

val prune : wal_path:string -> keep:int -> unit
(** Delete all but the newest [keep] snapshots. *)
