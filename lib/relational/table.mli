(** In-memory heap tables.

    Rows live in a growable slot array; a row id is its slot position and
    stays stable for the row's lifetime (deleted slots are recycled).  Every
    table with a declared primary key maintains a unique hash index on it;
    further secondary indexes may be added at any time and are backfilled
    from existing rows. *)

type t

val pk_index_name : string

val create : Schema.t -> t
val schema : t -> Schema.t
val name : t -> string
val row_count : t -> int

val version : t -> int
(** Bumped on every mutation (WAL replay included — recovery inserts go
    through {!insert}); {!Tablestats} and {!Plan_cache} key on it. *)

val uid : t -> int
(** Process-unique table identity, assigned at {!create}.  A [(uid,
    version)] pair never aliases across a drop-and-recreate of the same
    table name, which makes it a safe cache fingerprint component. *)

val restore_version : t -> int -> unit
(** Fast-forward the version counter to at least the given value (never
    backwards) — checkpoint load uses this so a rebuilt table's version
    stays ahead of everything the snapshot observed. *)

val get : t -> int -> Tuple.t option
val get_exn : t -> int -> Tuple.t

val insert : t -> Value.t array -> int
(** Validates the row against the schema (including primary-key uniqueness)
    and returns the new row id.  A failed insert leaves no trace. *)

val delete : t -> int -> Tuple.t
(** Returns the deleted row; its slot is recycled. *)

val update : t -> int -> Value.t array -> Tuple.t
(** Replaces the row in place (indexes follow); returns the old row. *)

val iter : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> int -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_seq : t -> (int * Tuple.t) Seq.t
val rows : t -> Tuple.t list

val indexes : t -> Index.t list
val find_index : t -> int array -> Index.t option
val index_named : t -> string -> Index.t option

val create_index :
  ?unique:bool -> ?kind:Index.kind -> t -> string -> int array -> Index.t
(** Adds (and backfills) a secondary index; raises on duplicate names or a
    uniqueness violation in existing data. *)

val drop_index : t -> string -> unit

val lookup_eq : t -> int array -> Value.t array -> int list
(** Row ids whose projection on the positions equals the key; uses a
    covering index when one exists, otherwise scans. *)

val lookup_pk : t -> Value.t array -> int option
(** Primary-key point lookup; [None] when the table has no primary key or
    no matching row. *)

val compact : t -> unit
(** Rebuild the slot array without tombstones.  Row ids are NOT stable
    across compaction — only call when no row ids are held; indexes are
    rebuilt. *)

val fragmentation : t -> float
(** Fraction of used slots that are tombstones. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
