(** The catalog maps table names (case-insensitive) to live tables.  A
    Youtopia instance owns one catalog for regular relations; answer
    relations live in their own store (see [Core.Answers]) but reuse
    {!Table}. *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  views : (string, string) Hashtbl.t;
      (** view name -> defining SELECT text; parsed by the SQL layer on use *)
}

let create () = { tables = Hashtbl.create 16; views = Hashtbl.create 8 }
let key name = String.lowercase_ascii name

let mem t name = Hashtbl.mem t.tables (key name)

let view_exists t name = Hashtbl.mem t.views (key name)

(** [create_view t name sql] stores a view definition; the name must not
    clash with a table or another view. *)
let create_view t name sql =
  if mem t name then Errors.fail (Errors.Duplicate_table name);
  if view_exists t name then Errors.fail (Errors.Duplicate_table name);
  Hashtbl.add t.views (key name) sql

let drop_view t name =
  if not (view_exists t name) then Errors.fail (Errors.No_such_table name);
  Hashtbl.remove t.views (key name)

let find_view t name = Hashtbl.find_opt t.views (key name)

let view_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.views []
  |> List.sort String.compare

let find_opt t name = Hashtbl.find_opt t.tables (key name)

let find t name =
  match find_opt t name with
  | Some table -> table
  | None -> Errors.fail (Errors.No_such_table name)

(** [create_table t schema] registers a fresh empty table. *)
let create_table t schema =
  let name = schema.Schema.name in
  if mem t name || view_exists t name then
    Errors.fail (Errors.Duplicate_table name);
  let table = Table.create schema in
  Hashtbl.add t.tables (key name) table;
  table

(** [add_table t table] registers an existing table (used by WAL replay). *)
let add_table t table =
  let name = Table.name table in
  if mem t name then Errors.fail (Errors.Duplicate_table name);
  Hashtbl.add t.tables (key name) table

let drop_table t name =
  if not (mem t name) then Errors.fail (Errors.No_such_table name);
  Hashtbl.remove t.tables (key name)

(** [adopt dst src] replaces [dst]'s contents (tables and views) with
    [src]'s, in place.  A replica bootstrapping from a streamed snapshot
    uses this so every live reference to its catalog — sessions, the
    coordinator, the server's engine — observes the new state without
    rewiring. *)
let adopt dst src =
  Hashtbl.reset dst.tables;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.tables k v) src.tables;
  Hashtbl.reset dst.views;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.views k v) src.views

let table_names t =
  Hashtbl.fold (fun _ table acc -> Table.name table :: acc) t.tables []
  |> List.sort String.compare

let iter f t = Hashtbl.iter (fun _ table -> f table) t.tables

let total_rows t =
  Hashtbl.fold (fun _ table acc -> acc + Table.row_count table) t.tables 0

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf name -> Fmt.pf ppf "%a" Table.pp (find t name)))
    (table_names t)
