(** Physical query plans.

    Every node carries its output schema, computed by the smart constructors
    below; the executor (see {!Executor}) never re-derives types.  All
    expressions inside a plan are fully resolved ([Expr.Col] positions refer
    to the node's input schema). *)

type order = Asc | Desc

type set_kind = Union | Intersect | Except

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type t = { schema : Schema.t; op : op }

and op =
  | Values of Tuple.t list
  | Scan of { table : string }
  | Index_lookup of { table : string; positions : int array; key : Value.t array }
      (** point lookup on an index covering [positions] *)
  | Filter of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Nl_join of { left : t; right : t; pred : Expr.t option }
      (** nested-loop join; [pred] over the concatenated tuple *)
  | Left_join of { left : t; right : t; pred : Expr.t option }
      (** left outer join: unmatched left rows padded with NULLs *)
  | Set_op of { kind : set_kind; all : bool; left : t; right : t }
      (** UNION / INTERSECT / EXCEPT, set semantics unless [all] *)
  | Hash_join of {
      left : t;
      right : t;
      left_keys : int array;
      right_keys : int array;
      residual : Expr.t option;
    }
  | Semi_join of {
      left : t;
      right : t;
      left_keys : int array;
      right_keys : int array;
      anti : bool;
    }  (** [left] rows with (no) key match in [right]; output schema = left *)
  | Aggregate of { group_by : Expr.t list; aggs : (agg * string) list; input : t }
  | Sort of (Expr.t * order) list * t
  | Distinct of t
  | Limit of int * t

val infer_type : Schema.t -> Expr.t -> Ctype.t
(** Best-effort output type of an expression over the given input schema
    (used for projection schemas; informational). *)

(** {1 Smart constructors} — each computes the node's output schema. *)

val values : Schema.t -> Tuple.t list -> t
val scan : Table.t -> alias:string -> t
val index_lookup : Table.t -> alias:string -> positions:int array -> key:Value.t array -> t

val filter : Expr.t -> t -> t
(** A TRUE predicate yields the input unchanged. *)

val project : (Expr.t * string) list -> t -> t

val project_as : Schema.t -> (Expr.t * string) list -> t -> t
(** Projection with an externally supplied output schema (used by the
    planner to restore source order after join reordering without losing
    column names). *)

val nl_join : ?pred:Expr.t -> t -> t -> t
val left_join : ?pred:Expr.t -> t -> t -> t
(** Right-side columns of the output schema become nullable. *)

val set_op : set_kind -> ?all:bool -> t -> t -> t
(** Raises [Schema_error] on an arity mismatch. *)

val hash_join :
  ?residual:Expr.t -> left_keys:int array -> right_keys:int array -> t -> t -> t

val semi_join :
  ?anti:bool -> left_keys:int array -> right_keys:int array -> t -> t -> t

val aggregate : group_by:Expr.t list -> aggs:(agg * string) list -> t -> t
val sort : (Expr.t * order) list -> t -> t
val distinct : t -> t
val limit : int -> t -> t

val tables : t -> string list
(** The base-table names the plan reads (lowercased, sorted, deduplicated).
    A plan's result can only change when one of these tables does — the key
    set for {!Plan_cache} fingerprints and dirty-table retry targeting. *)

val constraints : t -> (string * int * (int * Value.t) list) list
(** One entry per base-table access (Scan or Index_lookup): table name
    (lowercased), access arity, and the [(col, const)] equality constraints
    every row must satisfy to enter that access's output — collected from
    top-level [Col = Const] conjuncts reachable through position-stable
    operators (Filter/Sort/Distinct/Limit) plus Index_lookup keys.
    Non-indexable predicates (inequalities, computed expressions,
    disjunctions, anything above a Project/Aggregate/join) contribute
    nothing; the access is still listed with the constraints that {i could}
    be extracted, so consumers only ever widen, never narrow.  The pending
    store's tuple-level constraint index is keyed on these. *)

(** {1 EXPLAIN} *)

val agg_to_string : agg -> string
val pp : Format.formatter -> t -> unit
val explain : t -> string
