(** Physical query plans.

    Every node carries its output schema, computed by the smart constructors
    below; the executor (see {!Executor}) never re-derives types.  All
    expressions inside a plan are fully resolved ([Expr.Col] positions refer
    to the node's input schema). *)

type order = Asc | Desc

type set_kind = Union | Intersect | Except

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type t = { schema : Schema.t; op : op }

and op =
  | Values of Tuple.t list
  | Scan of { table : string }
  | Index_lookup of { table : string; positions : int array; key : Value.t array }
      (** point lookup on an index covering [positions] *)
  | Filter of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Nl_join of { left : t; right : t; pred : Expr.t option }
      (** nested-loop join; [pred] over the concatenated tuple *)
  | Left_join of { left : t; right : t; pred : Expr.t option }
      (** left outer join: unmatched left rows padded with NULLs *)
  | Set_op of { kind : set_kind; all : bool; left : t; right : t }
      (** UNION / INTERSECT / EXCEPT, set semantics unless [all] *)
  | Hash_join of {
      left : t;
      right : t;
      left_keys : int array;
      right_keys : int array;
      residual : Expr.t option;
    }
  | Semi_join of {
      left : t;
      right : t;
      left_keys : int array;
      right_keys : int array;
      anti : bool;
    }  (** [left] rows with (no) key match in [right]; output schema = left *)
  | Aggregate of { group_by : Expr.t list; aggs : (agg * string) list; input : t }
  | Sort of (Expr.t * order) list * t
  | Distinct of t
  | Limit of int * t

(* ------------------------------------------------------------------ *)
(* Type inference for projection schemas (best effort, informational). *)

let rec infer_type (schema : Schema.t) (e : Expr.t) : Ctype.t =
  match e with
  | Expr.Const v -> Option.value ~default:Ctype.TText (Ctype.of_value v)
  | Expr.Col i ->
    if i >= 0 && i < Schema.arity schema then
      (Schema.column_at schema i).Schema.col_type
    else Ctype.TText
  | Expr.Named _ -> Ctype.TText
  | Expr.Unop (Expr.Neg, a) -> infer_type schema a
  | Expr.Unop ((Expr.Not | Expr.Is_null | Expr.Is_not_null), _) -> Ctype.TBool
  | Expr.Binop ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Mod), a, b) -> (
    match infer_type schema a, infer_type schema b with
    | Ctype.TInt, Ctype.TInt -> Ctype.TInt
    | _ -> Ctype.TFloat)
  | Expr.Binop (Expr.Div, _, _) -> Ctype.TFloat
  | Expr.Binop (Expr.Concat, _, _) -> Ctype.TText
  | Expr.Binop
      ( ( Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq
        | Expr.And | Expr.Or ),
        _,
        _ ) -> Ctype.TBool
  | Expr.In_list _ | Expr.In_tuples _ | Expr.Like _ -> Ctype.TBool
  | Expr.Fn ((Expr.Lower | Expr.Upper), _) -> Ctype.TText
  | Expr.Fn (Expr.Length, _) -> Ctype.TInt
  | Expr.Fn (Expr.Abs, [ a ]) -> infer_type schema a
  | Expr.Fn (Expr.Abs, _) -> Ctype.TFloat
  | Expr.Fn (Expr.Coalesce, a :: _) -> infer_type schema a
  | Expr.Fn (Expr.Coalesce, []) -> Ctype.TText

let agg_type schema = function
  | Count_star | Count _ -> Ctype.TInt
  | Sum e | Min e | Max e -> infer_type schema e
  | Avg _ -> Ctype.TFloat

(* ------------------------------------------------------------------ *)
(* Smart constructors. *)

let values schema rows = { schema; op = Values rows }

let scan (table : Table.t) ~alias =
  let schema = Schema.rename (Table.schema table) alias in
  { schema; op = Scan { table = Table.name table } }

let index_lookup (table : Table.t) ~alias ~positions ~key =
  let schema = Schema.rename (Table.schema table) alias in
  { schema; op = Index_lookup { table = Table.name table; positions; key } }

let filter pred input =
  match pred with
  | Expr.Const (Value.Bool true) -> input
  | _ -> { schema = input.schema; op = Filter (pred, input) }

let project items input =
  let cols =
    List.map (fun (e, name) -> name, infer_type input.schema e) items
  in
  { schema = Schema.anonymous cols; op = Project (items, input) }

let join_schema left right =
  let qualify (s : Schema.t) =
    Array.to_list
      (Array.map
         (fun (c : Schema.column) ->
           Schema.
             {
               c with
               col_name =
                 (if s.Schema.name = "" then c.col_name
                  else s.Schema.name ^ "." ^ c.col_name);
             })
         s.Schema.columns)
  in
  Schema.
    {
      name = "<join>";
      columns = Array.of_list (qualify left.schema @ qualify right.schema);
      primary_key = [];
    }

let nl_join ?pred left right =
  { schema = join_schema left right; op = Nl_join { left; right; pred } }

let left_join ?pred left right =
  let schema = join_schema left right in
  (* right side may be NULL-padded *)
  let n_left = Schema.arity left.schema in
  let columns =
    Array.mapi
      (fun i (c : Schema.column) ->
        if i >= n_left then Schema.{ c with nullable = true } else c)
      schema.Schema.columns
  in
  {
    schema = { schema with Schema.columns };
    op = Left_join { left; right; pred };
  }

let set_op kind ?(all = false) left right =
  if Schema.arity left.schema <> Schema.arity right.schema then
    Errors.schema_errorf "set operation over different arities (%d vs %d)"
      (Schema.arity left.schema)
      (Schema.arity right.schema);
  { schema = left.schema; op = Set_op { kind; all; left; right } }

let hash_join ?residual ~left_keys ~right_keys left right =
  if Array.length left_keys <> Array.length right_keys then
    Errors.internalf "hash join key arity mismatch";
  {
    schema = join_schema left right;
    op = Hash_join { left; right; left_keys; right_keys; residual };
  }

let semi_join ?(anti = false) ~left_keys ~right_keys left right =
  {
    schema = left.schema;
    op = Semi_join { left; right; left_keys; right_keys; anti };
  }

let aggregate ~group_by ~aggs input =
  let gcols =
    List.mapi
      (fun i e ->
        let name =
          match e with
          | Expr.Col p when p < Schema.arity input.schema ->
            (Schema.column_at input.schema p).Schema.col_name
          | _ -> Printf.sprintf "group%d" i
        in
        name, infer_type input.schema e)
      group_by
  in
  let acols = List.map (fun (a, name) -> name, agg_type input.schema a) aggs in
  {
    schema = Schema.anonymous (gcols @ acols);
    op = Aggregate { group_by; aggs; input };
  }

(** [project_as schema items input] — projection with an externally supplied
    output schema (used by the planner to restore source order after join
    reordering without losing column names). *)
let project_as schema items input = { schema; op = Project (items, input) }

let sort keys input = { schema = input.schema; op = Sort (keys, input) }
let distinct input = { schema = input.schema; op = Distinct input }

let limit n input =
  if n < 0 then Errors.internalf "negative LIMIT %d" n;
  { schema = input.schema; op = Limit (n, input) }

(* ------------------------------------------------------------------ *)
(* Table footprint. *)

(** [tables t] — the base-table names the plan reads (lowercased, sorted,
    deduplicated).  This is the key set of {!Plan_cache}'s fingerprints and
    of the coordinator's dirty-table retry index: a plan's result can only
    change when one of these tables does. *)
let tables plan =
  let rec walk acc t =
    match t.op with
    | Values _ -> acc
    | Scan { table } | Index_lookup { table; _ } ->
      String.lowercase_ascii table :: acc
    | Filter (_, i) | Project (_, i) | Aggregate { input = i; _ }
    | Sort (_, i) | Distinct i | Limit (_, i) -> walk acc i
    | Nl_join { left; right; _ }
    | Left_join { left; right; _ }
    | Set_op { left; right; _ }
    | Hash_join { left; right; _ }
    | Semi_join { left; right; _ } -> walk (walk acc left) right
  in
  List.sort_uniq String.compare (walk [] plan)

(** [constraints t] — one entry per base-table {i access} (Scan or
    Index_lookup) the plan contains: the table name (lowercased), the
    access's output arity, and the equality constraints [(col, const)]
    every row must satisfy to enter that access's output.

    A constraint is collected from a top-level [Col i = Const v] conjunct
    of a Filter that sits above the access through {i position-stable}
    operators only (Filter/Sort/Distinct/Limit — their output schema is
    their input schema, so column positions still name the access's
    columns).  Index_lookup keys contribute directly.  Everything else —
    inequalities, computed expressions, disjunctions, and any predicate
    above a Project/Aggregate/join (whose output positions no longer name
    the access's columns) — contributes nothing: the access is still
    listed, just with fewer (possibly zero) constraints.

    Dropping a constraint only ever {i widens}: the collected list is a
    conjunction of necessary conditions, so a consumer that skips work for
    rows violating a listed constraint is sound, and an access with no
    constraints degrades to "any row of this table".  This is the contract
    the pending store's tuple-level constraint index is built on. *)
let constraints plan =
  let eq_conjuncts pred =
    List.filter_map
      (function
        | Expr.Binop (Expr.Eq, Expr.Col i, Expr.Const v)
        | Expr.Binop (Expr.Eq, Expr.Const v, Expr.Col i) -> Some (i, v)
        | _ -> None)
      (Expr.conjuncts pred)
  in
  let rec walk acc eqs t =
    match t.op with
    | Values _ -> acc
    | Scan { table } ->
      (String.lowercase_ascii table, Schema.arity t.schema, eqs) :: acc
    | Index_lookup { table; positions; key } ->
      let eqs =
        Array.to_list (Array.mapi (fun i p -> p, key.(i)) positions) @ eqs
      in
      (String.lowercase_ascii table, Schema.arity t.schema, eqs) :: acc
    | Filter (pred, i) -> walk acc (eq_conjuncts pred @ eqs) i
    | Sort (_, i) | Distinct i | Limit (_, i) -> walk acc eqs i
    (* position-unstable: constraints collected above cannot be pushed
       through, and predicates below start from scratch *)
    | Project (_, i) | Aggregate { input = i; _ } -> walk acc [] i
    | Nl_join { left; right; _ }
    | Left_join { left; right; _ }
    | Set_op { left; right; _ }
    | Hash_join { left; right; _ }
    | Semi_join { left; right; _ } -> walk (walk acc [] left) [] right
  in
  walk [] [] plan

(* ------------------------------------------------------------------ *)
(* EXPLAIN-style pretty printing, used by the admin interface and tests. *)

let agg_to_string = function
  | Count_star -> "count(*)"
  | Count e -> "count(" ^ Expr.to_string e ^ ")"
  | Sum e -> "sum(" ^ Expr.to_string e ^ ")"
  | Avg e -> "avg(" ^ Expr.to_string e ^ ")"
  | Min e -> "min(" ^ Expr.to_string e ^ ")"
  | Max e -> "max(" ^ Expr.to_string e ^ ")"

let rec pp ppf t =
  match t.op with
  | Values rows -> Fmt.pf ppf "values[%d row(s)]" (List.length rows)
  | Scan { table } -> Fmt.pf ppf "scan %s" table
  | Index_lookup { table; positions; key } ->
    Fmt.pf ppf "index_lookup %s%a = %a" table
      Fmt.(brackets (array ~sep:(any ",") int))
      positions Tuple.pp key
  | Filter (pred, input) ->
    Fmt.pf ppf "@[<v 2>filter %a@,%a@]" Expr.pp pred pp input
  | Project (items, input) ->
    Fmt.pf ppf "@[<v 2>project %a@,%a@]"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, n) -> Fmt.pf ppf "%a AS %s" Expr.pp e n))
      items pp input
  | Nl_join { left; right; pred } ->
    Fmt.pf ppf "@[<v 2>nl_join%a@,%a@,%a@]"
      Fmt.(option (fun ppf e -> Fmt.pf ppf " on %a" Expr.pp e))
      pred pp left pp right
  | Left_join { left; right; pred } ->
    Fmt.pf ppf "@[<v 2>left_join%a@,%a@,%a@]"
      Fmt.(option (fun ppf e -> Fmt.pf ppf " on %a" Expr.pp e))
      pred pp left pp right
  | Set_op { kind; all; left; right } ->
    Fmt.pf ppf "@[<v 2>%s%s@,%a@,%a@]"
      (match kind with
      | Union -> "union"
      | Intersect -> "intersect"
      | Except -> "except")
      (if all then "_all" else "")
      pp left pp right
  | Hash_join { left; right; left_keys; right_keys; residual } ->
    Fmt.pf ppf "@[<v 2>hash_join %a=%a%a@,%a@,%a@]"
      Fmt.(brackets (array ~sep:(any ",") int))
      left_keys
      Fmt.(brackets (array ~sep:(any ",") int))
      right_keys
      Fmt.(option (fun ppf e -> Fmt.pf ppf " residual %a" Expr.pp e))
      residual pp left pp right
  | Semi_join { left; right; left_keys; right_keys; anti } ->
    Fmt.pf ppf "@[<v 2>%s_join %a=%a@,%a@,%a@]"
      (if anti then "anti" else "semi")
      Fmt.(brackets (array ~sep:(any ",") int))
      left_keys
      Fmt.(brackets (array ~sep:(any ",") int))
      right_keys pp left pp right
  | Aggregate { group_by; aggs; input } ->
    Fmt.pf ppf "@[<v 2>aggregate group_by=(%a) aggs=(%a)@,%a@]"
      Fmt.(list ~sep:(any ", ") Expr.pp)
      group_by
      Fmt.(list ~sep:(any ", ") (fun ppf (a, n) -> Fmt.pf ppf "%s AS %s" (agg_to_string a) n))
      aggs pp input
  | Sort (keys, input) ->
    Fmt.pf ppf "@[<v 2>sort %a@,%a@]"
      Fmt.(
        list ~sep:(any ", ") (fun ppf (e, o) ->
            Fmt.pf ppf "%a %s" Expr.pp e (match o with Asc -> "asc" | Desc -> "desc")))
      keys pp input
  | Distinct input -> Fmt.pf ppf "@[<v 2>distinct@,%a@]" pp input
  | Limit (n, input) -> Fmt.pf ppf "@[<v 2>limit %d@,%a@]" n pp input

let explain t = Fmt.str "%a" pp t
