(** A database handle: catalog + transaction manager + optional WAL.

    This is the "regular DBMS" substrate that Youtopia's execution engine
    runs on.  When a WAL is attached, every committed transaction and every
    DDL operation is logged; {!recover} rebuilds an equivalent database from
    the log alone. *)

type t = {
  catalog : Catalog.t;
  txns : Txn.manager;
  mutable wal : Wal.t option;
}

val create : unit -> t

val attach_wal : ?durability:Wal.durability -> t -> string -> unit
(** Start logging to the given path (appending).  [durability] defaults to
    {!Wal.Flush_per_commit} (flush only — no crash durability; see
    {!Wal.durability}). *)

val set_durability : t -> Wal.durability -> unit
(** No-op without an attached WAL. *)

val wal_durability : t -> Wal.durability option
val wal_io : t -> Wal.io_stats option

val with_wal_batch : t -> (unit -> 'a) -> 'a
(** Run inside {!Wal.with_batch} when a WAL is attached: every commit in
    the scope shares one flush (+ one fsync in the fsync modes).  Plain
    call otherwise. *)

val log_ddl : t -> Wal.record -> unit

val create_table : t -> Schema.t -> Table.t
(** DDL is auto-committed and logged. *)

val drop_table : t -> string -> unit
val find_table : t -> string -> Table.t

val fingerprint : t -> string list -> (int * int) list
(** [(uid, version)] per named table; missing tables yield [(-1, -1)].
    Equal fingerprints imply identical table contents — tables only change
    through version-bumping mutations. *)

val recover : ?durability:Wal.durability -> string -> t
(** Rebuild a database from a WAL file (complete batches only), physically
    truncating any torn tail, and re-attach the log so new commits append
    to it. *)

val close : t -> unit

val with_txn : t -> (Txn.t -> 'a) -> 'a
(** Serializable transaction over the database. *)
