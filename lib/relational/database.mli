(** A database handle: catalog + transaction manager + optional WAL.

    This is the "regular DBMS" substrate that Youtopia's execution engine
    runs on.  When a WAL is attached, every committed transaction and every
    DDL operation is logged; {!recover} rebuilds an equivalent database from
    the log alone. *)

type recovery_stats = {
  snapshot_lsn : int option;
      (** LSN of the checkpoint recovery started from, if any *)
  replayed_batches : int;  (** WAL batches applied on top *)
  replayed_records : int;  (** redo records inside those batches *)
}

type t = {
  catalog : Catalog.t;
  txns : Txn.manager;
  mutable wal : Wal.t option;
  mutable recovery : recovery_stats option;
      (** how the last {!recover} rebuilt this database; [None] for a
          database born with {!create} *)
}

val create : unit -> t

val attach_wal : ?durability:Wal.durability -> t -> string -> unit
(** Start logging to the given path (appending).  [durability] defaults to
    {!Wal.Flush_per_commit} (flush only — no crash durability; see
    {!Wal.durability}). *)

val set_durability : t -> Wal.durability -> unit
(** No-op without an attached WAL. *)

val wal_durability : t -> Wal.durability option
val wal_io : t -> Wal.io_stats option

val reset_io_stats : t -> unit
(** Zero the WAL io counters (no-op without a WAL); {!recover} does this
    so recovery replay doesn't pollute bench/admin deltas. *)

val last_lsn : t -> int
(** LSN of the last committed WAL batch; 0 without a WAL. *)

val recovery_stats : t -> recovery_stats option
(** How the last {!recover} rebuilt this database; [None] for a database
    born with {!create}. *)

val with_wal_batch : t -> (unit -> 'a) -> 'a
(** Run inside {!Wal.with_batch} when a WAL is attached: every commit in
    the scope shares one flush (+ one fsync in the fsync modes).  Plain
    call otherwise. *)

val log_ddl : t -> Wal.record -> unit

val create_table : t -> Schema.t -> Table.t
(** DDL is auto-committed and logged. *)

val drop_table : t -> string -> unit
val find_table : t -> string -> Table.t

val fingerprint : t -> string list -> (int * int) list
(** [(uid, version)] per named table; missing tables yield [(-1, -1)].
    Equal fingerprints imply identical table contents — tables only change
    through version-bumping mutations. *)

val checkpoint : ?truncate_wal:bool -> ?keep:int -> t -> int * string
(** Atomically snapshot the catalog at the WAL's current LSN (see
    {!Checkpoint}); returns [(lsn, snapshot_path)].  The caller must
    exclude concurrent writers.  [truncate_wal] (default [false]) also
    cuts the WAL prefix the snapshot covers — making the snapshot
    load-bearing, since full replay of a truncated log is impossible.
    Prunes old snapshots down to [keep] (default 2).  Raises [Wal_error]
    without an attached WAL. *)

val recover : ?durability:Wal.durability -> string -> t
(** Rebuild a database from a WAL file (complete batches only), physically
    truncating any torn tail, and re-attach the log so new commits append
    to it.  Loads the newest valid checkpoint first and replays only the
    WAL suffix past its LSN; a torn/corrupt snapshot falls back to older
    snapshots, then to full replay.  See {!recovery_stats}. *)

val close : t -> unit

val crash : t -> unit
(** Abandon the database as a SIGKILL would: the WAL fd is closed without
    flushing (buffered bytes are lost).  For fault-injection tests; recover
    from the log with {!recover}. *)

val with_txn : t -> (Txn.t -> 'a) -> 'a
(** Serializable transaction over the database. *)
