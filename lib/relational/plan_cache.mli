(** Versioned memoization of {!Executor.run} results.

    Results are keyed on the {i physical} identity of the plan plus the
    fingerprint ([(uid, version)] pairs, see {!Table.uid}) of every table
    the plan reads: a lookup hits only while all of those tables are
    unchanged.  Pending entangled queries hold physically stable sub-plans
    across retries, so re-grounding an undisturbed query costs a fingerprint
    comparison instead of a scan-and-join re-execution.

    Not thread-safe; callers serialise access (the coordinator uses it
    under its own lock). *)

type t

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (** stale entries refreshed in place *)
  mutable evictions : int;  (** entries removed by CLOCK at capacity *)
}

val create : ?max_entries:int -> unit -> t
(** [max_entries] (default 8192) bounds growth.  At capacity a new insert
    evicts exactly one entry by second-chance/CLOCK: entries hit since the
    last sweep get one more lap; the first unreferenced one goes.  A hot
    cache is never wiped cold at the bound. *)

val run : t -> Catalog.t -> Plan.t -> Tuple.t list
(** [Executor.run cat plan], memoized on the plan's table fingerprint. *)

val fingerprint : Catalog.t -> string list -> (int * int) list
(** [(uid, version)] per table name; missing tables yield [(-1, -1)]. *)

val forget : t -> Plan.t -> unit
(** Drop one plan's entry (called when its owning query leaves the pending
    store). *)

val clear : t -> unit
val size : t -> int
val counters : t -> counters
