(** The catalog maps table names (case-insensitive) to live tables.  A
    Youtopia instance owns one catalog for regular relations; answer
    relations live in the same catalog (see [Core.Answers]) so they share
    transactions, the WAL, and the admin tooling. *)

type t

val create : unit -> t
val mem : t -> string -> bool
val find_opt : t -> string -> Table.t option

val find : t -> string -> Table.t
(** Raises [No_such_table]. *)

val create_table : t -> Schema.t -> Table.t
(** Raises [Duplicate_table]. *)

val add_table : t -> Table.t -> unit
(** Register an existing table (used by WAL replay). *)

val drop_table : t -> string -> unit

val adopt : t -> t -> unit
(** [adopt dst src] replaces [dst]'s tables and views with [src]'s, in
    place, so live references to [dst] observe the new state — used by a
    replica bootstrapping from a streamed snapshot. *)

(** {1 Views}

    Views are stored as their defining SELECT text; the SQL layer parses
    and inlines them as derived tables on use (so a view always reflects
    the current base data). *)

val create_view : t -> string -> string -> unit
val drop_view : t -> string -> unit
val view_exists : t -> string -> bool
val find_view : t -> string -> string option
val view_names : t -> string list
val table_names : t -> string list
val iter : (Table.t -> unit) -> t -> unit
val total_rows : t -> int
val pp : Format.formatter -> t -> unit
