(** Versioned memoization of {!Executor.run} results.

    Every database atom of a pending entangled query carries a closed
    relational sub-plan; each retry of that query used to re-execute every
    sub-plan from scratch.  This cache keys a plan's materialised result on
    the {b fingerprint} of the tables it reads — the [(uid, version)] pairs
    of {!Table} — so a retry whose base tables are unchanged re-grounds from
    cached rows instead of re-running scans and joins.

    Keys are {i physical} plan identities: a pending query is stored once in
    the pending store and its db-atom plans are physically stable across
    retries (renaming apart copies bindings, never plans), so the same plan
    value returns on every retry.  Structural hashing ([Hashtbl.hash] is
    depth-bounded) only buckets; equality is [(==)], so two structurally
    equal plans never collide.

    The cache is not thread-safe; the coordinator uses it under its own
    lock. *)

module H = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type entry = {
  tables : string list;  (** [Plan.tables], computed once per plan *)
  mutable fingerprint : (int * int) list;  (** (uid, version) per table *)
  mutable rows : Tuple.t list;
}

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (** stale entries refreshed in place *)
}

type t = {
  entries : entry H.t;
  max_entries : int;
  counters : counters;
}

let create ?(max_entries = 8192) () =
  {
    entries = H.create 256;
    max_entries;
    counters = { hits = 0; misses = 0; invalidations = 0 };
  }

let size t = H.length t.entries
let counters t = t.counters

let clear t = H.reset t.entries

let forget t plan = H.remove t.entries plan

(* A missing table fingerprints as (-1, -1): a plan over a dropped table
   stays permanently stale rather than raising here — the executor will
   surface the real error when the plan actually runs. *)
let fingerprint (cat : Catalog.t) tables =
  List.map
    (fun name ->
      match Catalog.find_opt cat name with
      | Some table -> Table.uid table, Table.version table
      | None -> -1, -1)
    tables

(** [run t cat plan] — [Executor.run cat plan], memoized.  Returns the
    cached rows when every table the plan reads is at the version it was
    cached at; otherwise executes, refreshes the entry, and counts a miss
    (plus an invalidation when a stale entry was replaced). *)
let run t (cat : Catalog.t) (plan : Plan.t) : Tuple.t list =
  match H.find_opt t.entries plan with
  | Some entry ->
    let now = fingerprint cat entry.tables in
    if entry.fingerprint = now then begin
      t.counters.hits <- t.counters.hits + 1;
      entry.rows
    end
    else begin
      t.counters.invalidations <- t.counters.invalidations + 1;
      t.counters.misses <- t.counters.misses + 1;
      let rows = Executor.run cat plan in
      entry.fingerprint <- now;
      entry.rows <- rows;
      rows
    end
  | None ->
    t.counters.misses <- t.counters.misses + 1;
    let tables = Plan.tables plan in
    let fp = fingerprint cat tables in
    let rows = Executor.run cat plan in
    (* Backstop against unbounded growth from plans that never return
       (e.g. one-shot submissions): dropping everything is cheap and rare. *)
    if H.length t.entries >= t.max_entries then H.reset t.entries;
    H.replace t.entries plan { tables; fingerprint = fp; rows };
    rows
