(** Versioned memoization of {!Executor.run} results.

    Every database atom of a pending entangled query carries a closed
    relational sub-plan; each retry of that query used to re-execute every
    sub-plan from scratch.  This cache keys a plan's materialised result on
    the {b fingerprint} of the tables it reads — the [(uid, version)] pairs
    of {!Table} — so a retry whose base tables are unchanged re-grounds from
    cached rows instead of re-running scans and joins.

    Keys are {i physical} plan identities: a pending query is stored once in
    the pending store and its db-atom plans are physically stable across
    retries (renaming apart copies bindings, never plans), so the same plan
    value returns on every retry.  Structural hashing ([Hashtbl.hash] is
    depth-bounded) only buckets; equality is [(==)], so two structurally
    equal plans never collide.

    The cache is not thread-safe; the coordinator uses it under its own
    lock. *)

module H = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type entry = {
  tables : string list;  (** [Plan.tables], computed once per plan *)
  mutable fingerprint : (int * int) list;  (** (uid, version) per table *)
  mutable rows : Tuple.t list;
  mutable referenced : bool;  (** CLOCK second-chance bit, set on hit *)
  mutable slot : int;  (** this entry's index in [ring] *)
}

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (** stale entries refreshed in place *)
  mutable evictions : int;  (** entries removed by CLOCK at capacity *)
}

type t = {
  entries : entry H.t;
  max_entries : int;
  ring : Plan.t option array;
      (** fixed ring of cached plans; [None] slots are free (tombstoned by
          {!forget} or never used) *)
  mutable hand : int;  (** CLOCK hand: next ring index to examine *)
  mutable free : int list;  (** free ring slots, claimed before sweeping *)
  counters : counters;
}

let create ?(max_entries = 8192) () =
  let max_entries = max 1 max_entries in
  {
    entries = H.create 256;
    max_entries;
    ring = Array.make max_entries None;
    hand = 0;
    free = List.init max_entries (fun i -> i);
    counters = { hits = 0; misses = 0; invalidations = 0; evictions = 0 };
  }

let size t = H.length t.entries
let counters t = t.counters

let clear t =
  H.reset t.entries;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.hand <- 0;
  t.free <- List.init t.max_entries (fun i -> i)

let forget t plan =
  match H.find_opt t.entries plan with
  | None -> ()
  | Some e ->
    H.remove t.entries plan;
    t.ring.(e.slot) <- None;
    t.free <- e.slot :: t.free

(* Claim a ring slot for a new entry: a free slot if one exists, otherwise
   second-chance (CLOCK) eviction — sweep from the hand, give each entry
   hit since the last sweep one more lap (clearing its bit), evict the
   first entry that was not.  Bounded at two laps: after one full lap every
   bit is clear, so the second lap must yield a victim (the guard beyond
   that force-evicts, for totality only). *)
let take_slot t =
  match t.free with
  | i :: rest ->
    t.free <- rest;
    i
  | [] ->
    let n = t.max_entries in
    let rec sweep steps =
      let i = t.hand in
      t.hand <- (t.hand + 1) mod n;
      match t.ring.(i) with
      | None -> if steps > 2 * n then i else sweep (steps + 1)
      | Some plan ->
        (match H.find_opt t.entries plan with
        | None -> i  (* stale slot (defensive): reclaim silently *)
        | Some e ->
          if e.referenced && steps <= 2 * n then begin
            e.referenced <- false;
            sweep (steps + 1)
          end
          else begin
            H.remove t.entries plan;
            t.counters.evictions <- t.counters.evictions + 1;
            i
          end)
    in
    sweep 0

(* A missing table fingerprints as (-1, -1): a plan over a dropped table
   stays permanently stale rather than raising here — the executor will
   surface the real error when the plan actually runs. *)
let fingerprint (cat : Catalog.t) tables =
  List.map
    (fun name ->
      match Catalog.find_opt cat name with
      | Some table -> Table.uid table, Table.version table
      | None -> -1, -1)
    tables

(** [run t cat plan] — [Executor.run cat plan], memoized.  Returns the
    cached rows when every table the plan reads is at the version it was
    cached at; otherwise executes, refreshes the entry, and counts a miss
    (plus an invalidation when a stale entry was replaced). *)
let run t (cat : Catalog.t) (plan : Plan.t) : Tuple.t list =
  match H.find_opt t.entries plan with
  | Some entry ->
    entry.referenced <- true;
    let now = fingerprint cat entry.tables in
    if entry.fingerprint = now then begin
      t.counters.hits <- t.counters.hits + 1;
      entry.rows
    end
    else begin
      t.counters.invalidations <- t.counters.invalidations + 1;
      t.counters.misses <- t.counters.misses + 1;
      let rows = Executor.run cat plan in
      entry.fingerprint <- now;
      entry.rows <- rows;
      rows
    end
  | None ->
    t.counters.misses <- t.counters.misses + 1;
    let tables = Plan.tables plan in
    let fp = fingerprint cat tables in
    let rows = Executor.run cat plan in
    (* At capacity, CLOCK evicts exactly one cold entry instead of the old
       drop-everything backstop, so a hot cache is never wiped cold.  New
       entries start unreferenced: a plan never hit again (e.g. a one-shot
       submission) is first in line at the next sweep. *)
    let slot = take_slot t in
    t.ring.(slot) <- Some plan;
    H.replace t.entries plan { tables; fingerprint = fp; rows; referenced = false; slot };
    rows
