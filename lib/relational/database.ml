(** A database handle: catalog + transaction manager + optional WAL.

    This is the "regular DBMS" substrate that Youtopia's execution engine
    runs on.  When a WAL is attached, every committed transaction and every
    DDL operation is logged; {!recover} rebuilds an equivalent database from
    the log alone. *)

type recovery_stats = {
  snapshot_lsn : int option;
      (** LSN of the checkpoint recovery started from, if any *)
  replayed_batches : int;  (** WAL batches applied on top *)
  replayed_records : int;  (** redo records inside those batches *)
}

type t = {
  catalog : Catalog.t;
  txns : Txn.manager;
  mutable wal : Wal.t option;
  mutable recovery : recovery_stats option;
      (** how the last {!recover} rebuilt this database; [None] for a
          database born with {!create} *)
}

let create () =
  {
    catalog = Catalog.create ();
    txns = Txn.create_manager ();
    wal = None;
    recovery = None;
  }

(** [attach_wal db path] starts logging to [path] (appending).
    [durability] defaults to {!Wal.Flush_per_commit}. *)
let attach_wal ?durability db path =
  let wal = Wal.open_log ?durability path in
  Wal.attach wal db.txns;
  db.wal <- Some wal

let set_durability db d =
  match db.wal with None -> () | Some wal -> Wal.set_durability wal d

let wal_durability db = Option.map Wal.durability db.wal
let wal_io db = Option.map Wal.io_stats db.wal

let reset_io_stats db =
  match db.wal with None -> () | Some wal -> Wal.reset_io_stats wal

(** [last_lsn db] — LSN of the last committed WAL batch (0 without a
    WAL). *)
let last_lsn db = match db.wal with None -> 0 | Some wal -> Wal.last_lsn wal

let recovery_stats db = db.recovery

(** [with_wal_batch db f] — runs [f] inside {!Wal.with_batch} when a WAL is
    attached (one sync for every commit in the scope), plain [f ()]
    otherwise. *)
let with_wal_batch db f =
  match db.wal with None -> f () | Some wal -> Wal.with_batch wal f

let log_ddl db record =
  match db.wal with None -> () | Some wal -> Wal.append wal [ record; Wal.Commit 0 ]

(** [create_table db schema] — DDL is auto-committed and logged. *)
let create_table db schema =
  let table = Catalog.create_table db.catalog schema in
  log_ddl db (Wal.Create_table schema);
  table

let drop_table db name =
  Catalog.drop_table db.catalog name;
  log_ddl db (Wal.Drop_table name)

let find_table db name = Catalog.find db.catalog name

(** [fingerprint db names] — the [(uid, version)] pair of every named table
    (missing tables yield [(-1, -1)]).  Equal fingerprints imply identical
    table contents since tables only change through version-bumping
    mutations; see {!Plan_cache}. *)
let fingerprint db names = Plan_cache.fingerprint db.catalog names

(** [checkpoint db] atomically snapshots the catalog at the WAL's current
    LSN (see {!Checkpoint}), optionally truncating the WAL prefix the
    snapshot covers, and prunes old snapshots down to [keep].  The caller
    must exclude concurrent writers (the server runs this under its engine
    read lock).  Returns [(lsn, snapshot_path)].

    [truncate_wal] defaults to [false]: truncation makes the snapshot
    load-bearing — full replay of a truncated log is impossible, so a
    corrupt snapshot then has nothing to fall back to beyond older
    snapshots. *)
let checkpoint ?(truncate_wal = false) ?(keep = 2) db =
  match db.wal with
  | None ->
    Errors.fail (Errors.Wal_error "checkpoint requires an attached WAL")
  | Some wal ->
    Wal.sync wal;
    let lsn = Wal.last_lsn wal in
    let path = Checkpoint.write ~wal_path:(Wal.path wal) ~lsn db.catalog in
    if truncate_wal then Wal.truncate_prefix wal ~upto_lsn:lsn;
    Checkpoint.prune ~wal_path:(Wal.path wal) ~keep;
    (lsn, path)

(** [recover path] rebuilds a database from a WAL file and re-attaches the
    log so new commits append to it.  The torn tail (if any) is physically
    truncated first: replay would ignore it anyway, but appending after it
    would merge stale pre-crash bytes into the next committed batch.

    When a valid checkpoint exists next to the log, only the WAL suffix
    past its LSN is replayed; a torn or corrupt snapshot falls back to an
    older one, then to full replay (impossible — loud failure — only if
    the WAL prefix was truncated past every surviving snapshot).
    {!recovery_stats} records which path was taken.  The io counters are
    reset afterwards so recovery replay doesn't pollute bench/admin
    deltas. *)
let recover ?durability path =
  ignore (Wal.truncate_torn_tail path);
  let catalog, recovery =
    match Checkpoint.load_latest ~wal_path:path with
    | Some (lsn, catalog, _snapshot_path) ->
      let batches, records = Wal.replay_into catalog path ~after_lsn:lsn in
      ( catalog,
        {
          snapshot_lsn = Some lsn;
          replayed_batches = batches;
          replayed_records = records;
        } )
    | None ->
      let catalog = Catalog.create () in
      let batches, records = Wal.replay_into catalog path ~after_lsn:0 in
      ( catalog,
        {
          snapshot_lsn = None;
          replayed_batches = batches;
          replayed_records = records;
        } )
  in
  let db =
    {
      catalog;
      txns = Txn.create_manager ();
      wal = None;
      recovery = Some recovery;
    }
  in
  attach_wal ?durability db path;
  reset_io_stats db;
  db

let close db =
  match db.wal with
  | None -> ()
  | Some wal ->
    Wal.close wal;
    db.wal <- None

(** [crash db] — abandon the database as a SIGKILL would: the WAL fd is
    closed without flushing (see {!Wal.crash}), losing any buffered bytes.
    The in-memory catalog is left as-is but must not be trusted; recover
    from the log with {!recover}. *)
let crash db =
  match db.wal with
  | None -> ()
  | Some wal ->
    Wal.crash wal;
    db.wal <- None

(** [with_txn db f] — serializable transaction over the database. *)
let with_txn db f = Txn.with_txn db.txns f
