(** A database handle: catalog + transaction manager + optional WAL.

    This is the "regular DBMS" substrate that Youtopia's execution engine
    runs on.  When a WAL is attached, every committed transaction and every
    DDL operation is logged; {!recover} rebuilds an equivalent database from
    the log alone. *)

type t = {
  catalog : Catalog.t;
  txns : Txn.manager;
  mutable wal : Wal.t option;
}

let create () = { catalog = Catalog.create (); txns = Txn.create_manager (); wal = None }

(** [attach_wal db path] starts logging to [path] (appending).
    [durability] defaults to {!Wal.Flush_per_commit}. *)
let attach_wal ?durability db path =
  let wal = Wal.open_log ?durability path in
  Wal.attach wal db.txns;
  db.wal <- Some wal

let set_durability db d =
  match db.wal with None -> () | Some wal -> Wal.set_durability wal d

let wal_durability db = Option.map Wal.durability db.wal
let wal_io db = Option.map Wal.io_stats db.wal

(** [with_wal_batch db f] — runs [f] inside {!Wal.with_batch} when a WAL is
    attached (one sync for every commit in the scope), plain [f ()]
    otherwise. *)
let with_wal_batch db f =
  match db.wal with None -> f () | Some wal -> Wal.with_batch wal f

let log_ddl db record =
  match db.wal with None -> () | Some wal -> Wal.append wal [ record; Wal.Commit 0 ]

(** [create_table db schema] — DDL is auto-committed and logged. *)
let create_table db schema =
  let table = Catalog.create_table db.catalog schema in
  log_ddl db (Wal.Create_table schema);
  table

let drop_table db name =
  Catalog.drop_table db.catalog name;
  log_ddl db (Wal.Drop_table name)

let find_table db name = Catalog.find db.catalog name

(** [fingerprint db names] — the [(uid, version)] pair of every named table
    (missing tables yield [(-1, -1)]).  Equal fingerprints imply identical
    table contents since tables only change through version-bumping
    mutations; see {!Plan_cache}. *)
let fingerprint db names = Plan_cache.fingerprint db.catalog names

(** [recover path] rebuilds a database from a WAL file and re-attaches the
    log so new commits append to it.  The torn tail (if any) is physically
    truncated first: replay would ignore it anyway, but appending after it
    would merge stale pre-crash bytes into the next committed batch. *)
let recover ?durability path =
  ignore (Wal.truncate_torn_tail path);
  let catalog = Wal.replay path in
  let db = { catalog; txns = Txn.create_manager (); wal = None } in
  attach_wal ?durability db path;
  db

let close db =
  match db.wal with
  | None -> ()
  | Some wal ->
    Wal.close wal;
    db.wal <- None

(** [with_txn db f] — serializable transaction over the database. *)
let with_txn db f = Txn.with_txn db.txns f
