(** In-memory heap tables.

    Rows live in a growable slot array; a row id is its slot position and
    stays stable for the row's lifetime (deleted slots are recycled).  Every
    table with a declared primary key maintains a unique hash index on it;
    further secondary indexes may be added at any time and are backfilled
    from existing rows. *)

type t = {
  schema : Schema.t;
  uid : int;  (** process-unique identity; distinguishes recreated tables *)
  mutable slots : Tuple.t option array;
  mutable high : int;  (** slots\[high..\] were never used *)
  mutable free : int list;
  mutable live : int;
  mutable indexes : Index.t list;
  mutable version : int;  (** bumped on every mutation; used by Tablestats *)
}

let pk_index_name = "#pk"

(* Monotone uid source: (uid, version) pairs form a fingerprint that can
   never alias across a drop-and-recreate of the same table name. *)
let next_uid = ref 0

let create schema =
  incr next_uid;
  let t =
    {
      schema;
      uid = !next_uid;
      slots = Array.make 16 None;
      high = 0;
      free = [];
      live = 0;
      indexes = [];
      version = 0;
    }
  in
  (match schema.Schema.primary_key with
  | [] -> ()
  | pk ->
    t.indexes <-
      [ Index.create ~unique:true pk_index_name (Array.of_list pk) ]);
  t

let schema t = t.schema
let name t = t.schema.Schema.name
let row_count t = t.live
let version t = t.version
let uid t = t.uid

(** [restore_version t v] fast-forwards the version counter to at least
    [v] — used when a checkpoint load rebuilds a table whose recorded
    version is ahead of the raw insert count, so post-load mutations keep
    the monotone fingerprint contract.  Never moves backwards. *)
let restore_version t v = if v > t.version then t.version <- v

let get t row_id =
  if row_id < 0 || row_id >= t.high then None else t.slots.(row_id)

let get_exn t row_id =
  match get t row_id with
  | Some row -> row
  | None -> Errors.internalf "table %s has no row %d" (name t) row_id

let ensure_capacity t =
  if t.high >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 bigger 0 t.high;
    t.slots <- bigger
  end

(** [insert t row] validates the row against the schema (including primary
    key uniqueness) and returns the new row id. *)
let insert t row =
  let row = Schema.check_row t.schema row in
  let row_id =
    match t.free with
    | id :: rest ->
      t.free <- rest;
      id
    | [] ->
      ensure_capacity t;
      let id = t.high in
      t.high <- t.high + 1;
      id
  in
  (* Index maintenance first so a uniqueness violation leaves the slot
     unoccupied. *)
  (try List.iter (fun ix -> Index.insert ix ~row_id row) t.indexes
   with e ->
     List.iter
       (fun ix -> try Index.remove ix ~row_id row with _ -> ())
       t.indexes;
     t.free <- row_id :: t.free;
     raise e);
  t.slots.(row_id) <- Some row;
  t.live <- t.live + 1;
  t.version <- t.version + 1;
  row_id

let delete t row_id =
  match get t row_id with
  | None -> Errors.internalf "delete: table %s has no row %d" (name t) row_id
  | Some row ->
    List.iter (fun ix -> Index.remove ix ~row_id row) t.indexes;
    t.slots.(row_id) <- None;
    t.free <- row_id :: t.free;
    t.live <- t.live - 1;
    t.version <- t.version + 1;
    row

let update t row_id row =
  let row = Schema.check_row t.schema row in
  match get t row_id with
  | None -> Errors.internalf "update: table %s has no row %d" (name t) row_id
  | Some old ->
    List.iter (fun ix -> Index.remove ix ~row_id old) t.indexes;
    (try List.iter (fun ix -> Index.insert ix ~row_id row) t.indexes
     with e ->
       (* Restore the old index entries to keep the table consistent. *)
       List.iter (fun ix -> try Index.remove ix ~row_id row with _ -> ()) t.indexes;
       List.iter (fun ix -> Index.insert ix ~row_id old) t.indexes;
       raise e);
    t.slots.(row_id) <- Some row;
    t.version <- t.version + 1;
    old

let iter f t =
  for id = 0 to t.high - 1 do
    match t.slots.(id) with None -> () | Some row -> f id row
  done

let fold f init t =
  let acc = ref init in
  iter (fun id row -> acc := f !acc id row) t;
  !acc

let to_seq t =
  let rec next id () =
    if id >= t.high then Seq.Nil
    else
      match t.slots.(id) with
      | None -> next (id + 1) ()
      | Some row -> Seq.Cons ((id, row), next (id + 1))
  in
  next 0

let rows t = fold (fun acc _ row -> row :: acc) [] t |> List.rev

let indexes t = t.indexes

(** [find_index t positions] returns an index covering exactly [positions]
    (in order), if any. *)
let find_index t positions =
  List.find_opt (fun ix -> Index.positions ix = positions) t.indexes

let index_named t name =
  List.find_opt (fun ix -> Index.name ix = name) t.indexes

(** [create_index t name positions] adds (and backfills) a secondary index.
    Raises on duplicate index names. *)
let create_index ?(unique = false) ?(kind = Index.Hash) t index_name positions =
  if index_named t index_name <> None then
    Errors.schema_errorf "index %s already exists on %s" index_name (name t);
  Array.iter
    (fun p ->
      if p < 0 || p >= Schema.arity t.schema then
        Errors.schema_errorf "index %s: column position %d out of range"
          index_name p)
    positions;
  let ix = Index.create ~unique ~kind index_name positions in
  iter (fun row_id row -> Index.insert ix ~row_id row) t;
  t.indexes <- t.indexes @ [ ix ];
  ix

let drop_index t index_name =
  if index_name = pk_index_name then
    Errors.schema_errorf "cannot drop the primary key index of %s" (name t);
  t.indexes <- List.filter (fun ix -> Index.name ix <> index_name) t.indexes

(** Row ids whose projection on [positions] equals [key]; uses a covering
    index when one exists, otherwise scans. *)
let lookup_eq t positions key =
  match find_index t positions with
  | Some ix -> Index.lookup ix key
  | None ->
    fold
      (fun acc row_id row ->
        if Tuple.equal (Tuple.project positions row) key then row_id :: acc
        else acc)
      [] t
    |> List.rev

(** Primary-key point lookup; [None] when the table has no primary key or no
    matching row. *)
let lookup_pk t key =
  match index_named t pk_index_name with
  | None -> None
  | Some ix -> (
    match Index.lookup ix key with
    | [ row_id ] -> Some row_id
    | [] -> None
    | _ -> Errors.internalf "primary key index of %s is not unique" (name t))

(** [compact t] rebuilds the slot array without tombstones.  Row ids are
    NOT stable across compaction — only call when no row ids are held
    (e.g. between workloads); indexes are rebuilt. *)
let compact t =
  let live_rows = rows t in
  t.slots <- Array.make (max 16 (List.length live_rows)) None;
  t.high <- 0;
  t.free <- [];
  t.live <- 0;
  t.version <- t.version + 1;
  List.iter Index.clear t.indexes;
  List.iter
    (fun row ->
      ensure_capacity t;
      let row_id = t.high in
      t.high <- t.high + 1;
      List.iter (fun ix -> Index.insert ix ~row_id row) t.indexes;
      t.slots.(row_id) <- Some row;
      t.live <- t.live + 1)
    live_rows

(** Fraction of used slots that are tombstones. *)
let fragmentation t =
  if t.high = 0 then 0.0
  else float_of_int (t.high - t.live) /. float_of_int t.high

let clear t =
  t.slots <- Array.make 16 None;
  t.high <- 0;
  t.free <- [];
  t.live <- 0;
  t.version <- t.version + 1;
  List.iter Index.clear t.indexes

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%a  -- %d row(s)@,%a@]" Schema.pp t.schema t.live
    Fmt.(list ~sep:cut Tuple.pp)
    (rows t)
